package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/arima"
	"repro/internal/ets"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/tbats"
	"repro/internal/timeseries"
)

// Technique selects the algorithm branch of Figure 4: the user chooses
// "Holt-Winters Exponential Smoothing (HES) … or SARIMAX" (§5.1). The
// plain ARIMA branch exists as the paper's baseline family (Table 2).
type Technique int

const (
	// TechniqueSARIMAX runs the seasonal ARIMA branch with exogenous
	// shocks and Fourier terms — the paper's headline method.
	TechniqueSARIMAX Technique = iota
	// TechniqueHES runs the Holt-Winters exponential smoothing branch.
	TechniqueHES
	// TechniqueARIMA runs the non-seasonal baseline family.
	TechniqueARIMA
	// TechniqueTBATS runs the trigonometric-seasonality state-space
	// family of §4.3 — the complex-seasonality alternative to SARIMAX,
	// with candidate structures selected by AIC and the champion by
	// hold-out RMSE like every other branch.
	TechniqueTBATS
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case TechniqueSARIMAX:
		return "SARIMAX"
	case TechniqueHES:
		return "HES"
	case TechniqueARIMA:
		return "ARIMA"
	case TechniqueTBATS:
		return "TBATS"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Options configures an engine run.
type Options struct {
	// Technique selects the model family (Figure 4's branch choice).
	Technique Technique
	// Level is the prediction-interval coverage (0 → 0.95).
	Level float64
	// Horizon overrides the Table 1 horizon (0 → policy default).
	Horizon int
	// Workers bounds parallel model fitting (0 → GOMAXPROCS). The paper:
	// "Gains are also achieved by parallel processing the models."
	Workers int
	// MaxCandidates caps the pruned grid (0 → 48).
	MaxCandidates int
	// FullGrid evaluates the paper's full §6.3 grids (hundreds of models)
	// instead of the correlogram-pruned grid. Slow; used by the
	// benchmark harness.
	FullGrid bool
	// DisableExog suppresses shock regressors (for ablations).
	DisableExog bool
	// DisableFourier suppresses Fourier terms (for ablations).
	DisableFourier bool
	// FourierK lists harmonic counts to try for secondary periods
	// (nil → {1, 2}); the best by hold-out RMSE wins, per §4.4.
	FourierK []int
	// KnownShockPhases declares scheduled events the operator already
	// knows about (e.g. a backup at phases 0, 6, 12, 18 of the daily
	// cycle) — the paper's "as long as the exogenous variables (shocks)
	// are understood and accounted for". They are merged with detected
	// behaviours; duplicates collapse.
	KnownShockPhases []int
	// Analyze overrides analysis options.
	Analyze AnalyzeOptions
	// Warm carries a previous run's champion parameters and candidate
	// scores into this run: the incumbent seeds a perturbed Nelder-Mead
	// simplex and the grid shrinks to the top scorers plus an exploration
	// band (see WarmStart). nil — the default — runs the full cold path,
	// byte-identical to seed behaviour.
	Warm *WarmStart
	// FitTimeout bounds each candidate fit's wall time (0 = no limit).
	// A candidate that exceeds it is scored as a timed-out failure —
	// visible in fit_errors_total{cause="timeout"} and on its fit span —
	// while the rest of the grid still competes for champion, so one
	// pathological optimisation cannot wedge a worker. `capplan serve`
	// defaults this to 30s.
	FitTimeout time.Duration
	// Obs receives logs, pipeline spans and metrics for every run. nil
	// (the default) disables observability at zero cost.
	Obs *obs.Observer

	// fitHook is a test seam: when set it runs at the start of every
	// candidate fit with the candidate's fit context and label, and a
	// non-nil error (or a panic) stands in for the real fit outcome.
	fitHook func(ctx context.Context, label string) error
}

// CandidateResult records one evaluated model.
type CandidateResult struct {
	// Label is the model description, e.g. "SARIMAX (1,1,1)(1,1,1,24)+exog".
	Label string
	// Score holds the hold-out accuracy (RMSE, MAPE, MAPA, …).
	Score metrics.Score
	// AIC is the in-sample information criterion (NaN for HES variants
	// where it is incomparable).
	AIC float64
	// Err is non-nil when the fit failed; such candidates never win.
	Err error
	// FitDuration measures wall time for this candidate.
	FitDuration time.Duration

	cand     arima.Candidate
	etsKind  ets.Method
	isETS    bool
	fourierK int
	tbatsCfg *tbats.Config
}

// Prediction is the engine's unified forecast: point estimates with error
// bars, timestamped.
type Prediction struct {
	Start        time.Time
	Freq         timeseries.Frequency
	Mean         []float64
	Lower, Upper []float64
	SE           []float64
	Level        float64
}

// TimeAt returns the timestamp of forecast step i.
func (p *Prediction) TimeAt(i int) time.Time {
	return p.Start.Add(time.Duration(i) * p.Freq.Step())
}

// Result is an engine run outcome.
type Result struct {
	// SeriesName identifies what was modelled.
	SeriesName string
	// Technique is the branch that ran.
	Technique Technique
	// Analysis characterises the input.
	Analysis *Analysis
	// Candidates lists every evaluated model, best first.
	Candidates []CandidateResult
	// Champion is the winning candidate (lowest hold-out RMSE).
	Champion CandidateResult
	// TestScore repeats the champion's hold-out accuracy.
	TestScore metrics.Score
	// TestForecast is the champion's forecast over the hold-out window
	// (aligned with TestActual) — the yellow section of Figures 6 and 7.
	TestForecast []float64
	// TestActual is the hold-out data.
	TestActual []float64
	// Forecast is the production forecast: the champion refitted on the
	// full series and extended Horizon steps beyond its end.
	Forecast *Prediction
	// Diagnostics holds the champion's residual checks (Ljung-Box,
	// Jarque-Bera) when the champion is an ARIMA-family model; nil for
	// HES/TBATS champions.
	Diagnostics *arima.Diagnostics
	// Baselines scores the naive benchmark methods on the same hold-out
	// window; a champion worth storing beats them.
	Baselines map[string]metrics.Score
	// BeatsBaselines reports whether the champion's RMSE beats every
	// baseline's.
	BeatsBaselines bool
	// TrainLen and TestLen record the Table 1 split actually used.
	TrainLen, TestLen int
	// Elapsed is the total wall time; ModelsEvaluated the grid size.
	Elapsed         time.Duration
	ModelsEvaluated int
	// WarmStarted reports whether warm-start options (Options.Warm) were
	// in effect for this run — the monitor's refit_mode label reads it.
	WarmStarted bool
	// Live is the champion refitted on the full series, retained with its
	// regressor design so new observations can advance the model state in
	// place (Result.Advanced) without an optimiser call.
	Live *LiveModel
}

// ChampionFamily names the champion's model family ("SARIMAX", "HES",
// "ARIMA" or "TBATS") — the label the accuracy monitor keys its rolling
// scores by.
func (r *Result) ChampionFamily() string {
	return candidateFamily(&r.Champion)
}

// Engine runs the Figure 4 pipeline.
type Engine struct {
	opt Options
	// parent, when set, nests the run's trace under an enclosing span
	// (the fleet runner's per-workload span).
	parent *obs.Span
}

// WithParentSpan nests every subsequent Run trace under sp instead of
// opening a new root span. It returns the engine for chaining.
func (e *Engine) WithParentSpan(sp *obs.Span) *Engine {
	e.parent = sp
	return e
}

// startSpan opens the run's root span: a child of the configured parent
// when nested, otherwise parented on whatever trace evidence ctx
// carries — a monitor-triggered refit passes the trace of the ingest
// batch that tripped it, so the whole push→store→refit chain shares one
// trace ID. A bare ctx falls back to a fresh root.
func (e *Engine) startSpan(ctx context.Context, name string) *obs.Span {
	if e.parent != nil {
		return e.parent.Child(name)
	}
	return e.opt.Obs.StartSpanFrom(ctx, name)
}

// candidateFamily names the model family of a candidate for span
// attributes and metric labels.
func candidateFamily(c *CandidateResult) string {
	switch {
	case c.tbatsCfg != nil:
		return "TBATS"
	case c.isETS:
		return "HES"
	case c.cand.Spec.IsSeasonal():
		return "SARIMAX"
	default:
		return "ARIMA"
	}
}

// NewEngine validates options and returns an Engine.
func NewEngine(opt Options) (*Engine, error) {
	if opt.Level == 0 {
		opt.Level = 0.95
	}
	if opt.Level <= 0 || opt.Level >= 1 {
		return nil, fmt.Errorf("core: level %v outside (0,1)", opt.Level)
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Workers < 1 {
		return nil, fmt.Errorf("core: workers must be positive")
	}
	if opt.MaxCandidates == 0 {
		opt.MaxCandidates = 48
	}
	if len(opt.FourierK) == 0 {
		opt.FourierK = []int{1, 2}
	}
	return &Engine{opt: opt}, nil
}

// Run executes the pipeline on a series: gap repair → Table 1 split →
// analysis → candidate grid → parallel fit/score → champion → forecast.
// Stage failures come back wrapped with their Figure 4 stage name
// ("analyse: …"), so a fleet-scale failure is attributable without a
// debugger. ctx cancels the run cooperatively: in-flight candidate fits
// abort inside their optimisers and Run returns an error wrapping the
// context's cause (nil ctx means background).
func (e *Engine) Run(ctx context.Context, s *timeseries.Series) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := e.opt.Obs
	began := time.Now()
	run := e.startSpan(ctx, "engine.run")
	defer run.End()
	run.Set("series", s.Name)
	run.Set("technique", e.opt.Technique.String())
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("run: %w", err)
		run.Fail(err)
		return nil, err
	}

	// Stage 0 (Figure 4): fetch the series into working memory.
	sp := run.Child("fetch")
	work := s.Clone()
	sp.Set("observations", work.Len())
	sp.Set("freq", work.Freq.String())
	sp.End()

	// Stage 1 (Figure 4): missing values → linear interpolation.
	// Interpolation repairs occasional gaps; a series that is mostly
	// holes has no signal to learn and is refused.
	sp = run.Child("interpolate")
	if miss := work.MissingCount(); miss > 0 {
		sp.Set("missing", miss)
		if frac := float64(miss) / float64(work.Len()); frac > 0.25 {
			err := fmt.Errorf("interpolate: series %q is %.0f%% missing — too sparse to model", s.Name, frac*100)
			sp.Fail(err)
			sp.End()
			run.Fail(err)
			return nil, err
		}
		if _, err := work.Interpolate(); err != nil {
			err = fmt.Errorf("interpolate: %w", err)
			sp.Fail(err)
			sp.End()
			run.Fail(err)
			return nil, err
		}
	}
	sp.End()

	// Stage 2: train/test split per Table 1.
	sp = run.Child("split")
	policy, err := PolicyFor(work.Freq)
	if err != nil {
		err = fmt.Errorf("split: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	train, test, err := policy.Split(work)
	if err != nil {
		err = fmt.Errorf("split: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	horizon := e.opt.Horizon
	if horizon <= 0 {
		horizon = policy.Horizon
	}
	sp.Set("train", train.Len())
	sp.Set("test", test.Len())
	sp.End()

	// Stage 3: characterise the training data.
	sp = run.Child("analyse")
	an, err := Analyze(train, e.opt.Analyze)
	if err != nil {
		err = fmt.Errorf("analyse: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	sp.Set("period", an.Period)
	sp.Set("d", an.D)
	sp.Set("seasonal_d", an.SeasonalD)
	sp.Set("shocks", len(an.Shocks))
	sp.End()
	o.Debug("analysis complete", "series", s.Name,
		"period", an.Period, "d", an.D, "seasonal_d", an.SeasonalD,
		"shocks", len(an.Shocks), "extra_periods", len(an.ExtraPeriods))
	// Merge operator-declared schedules with detected behaviours.
	if len(e.opt.KnownShockPhases) > 0 {
		period := max(an.Period, train.Freq.Period())
		have := make(map[int]bool, len(an.Shocks))
		for _, sh := range an.Shocks {
			have[sh.Phase] = true
		}
		for _, p := range e.opt.KnownShockPhases {
			p = ((p % period) + period) % period
			if have[p] {
				continue
			}
			an.Shocks = append(an.Shocks, Shock{
				Phase:       p,
				Occurrences: train.Len() / max(period, 1),
				Positive:    true,
			})
			have[p] = true
		}
	}

	// Stage 4: enumerate candidates for the chosen branch, then — on a
	// warm refit — shrink the grid to the previous run's top scorers plus
	// the incumbent and a small exploration band.
	sp = run.Child("build-candidates")
	cands := e.buildCandidates(train, an)
	sp.Set("candidates", len(cands))
	if len(cands) == 0 {
		err := fmt.Errorf("build-candidates: no candidates for series %q", s.Name)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	if e.opt.Warm != nil {
		kept, skipped := shrinkCandidates(cands, e.opt.Warm)
		if skipped > 0 {
			cands = kept
			sp.Set("grid_skipped", skipped)
			o.Count("refit_grid_skipped_total", int64(skipped))
			o.Debug("candidate grid shrunk by prior scores", "series", s.Name,
				"kept", len(cands), "skipped", skipped)
		}
	}
	sp.End()

	// Stage 4½: precompute shared fit inputs — one differenced series per
	// distinct (d, D, s), one regressor design per distinct
	// (exog, fourier, K) — so candidates share instead of recompute.
	sp = run.Child("precompute")
	rc := e.precompute(train.Values, an, cands, sp)
	sp.End()

	// Stage 5: fit and score in parallel.
	sp = run.Child("fit-score")
	sp.Set("workers", e.opt.Workers)
	results := e.evaluate(ctx, train.Values, test.Values, an, cands, rc, sp)
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("fit-score: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	sp.End()

	// Rank: best hold-out RMSE first; failed fits sink.
	sp = run.Child("champion")
	sort.SliceStable(results, func(i, j int) bool {
		if (results[i].Err == nil) != (results[j].Err == nil) {
			return results[i].Err == nil
		}
		return results[i].Score.Better(results[j].Score)
	})
	champion := results[0]
	if champion.Err != nil {
		err := fmt.Errorf("champion: every candidate failed; first error: %w", champion.Err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	sp.Set("label", champion.Label)
	sp.Set("rmse", champion.Score.RMSE)
	sp.End()
	o.Count("champion_family_total", 1, obs.L("family", candidateFamily(&champion)))
	o.Info("champion selected", "series", s.Name, "label", champion.Label,
		"rmse", champion.Score.RMSE, "mapa", champion.Score.MAPA,
		"candidates", len(results))

	// Stage 6: champion's test-window forecast for reporting, and the
	// production forecast from a full-series refit.
	sp = run.Child("forecast")
	sp.Set("horizon", horizon)
	testFC, err := e.refitForecast(ctx, champion, train.Values, an, rc, len(test.Values))
	if err != nil {
		err = fmt.Errorf("forecast: champion test forecast: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	ff, err := e.fullForecast(ctx, champion, work.Values, an, rc, horizon)
	if err != nil {
		err = fmt.Errorf("forecast: champion production forecast: %w", err)
		sp.Fail(err)
		sp.End()
		run.Fail(err)
		return nil, err
	}
	sp.End()

	// Baseline scores on the same hold-out window.
	baselines := map[string]metrics.Score{}
	beats := true
	for _, bm := range []naive.Method{naive.Last, naive.Drift, naive.Mean, naive.SeasonalNaive} {
		period := an.Period
		if period == 0 {
			period = train.Freq.Period()
		}
		bfc, berr := naive.Predict(bm, train.Values, period, len(test.Values), e.opt.Level)
		if berr != nil {
			// A missing baseline row must be distinguishable from a scored
			// one — count and log instead of silently dropping it.
			o.Count("baseline_errors_total", 1, obs.L("method", bm.String()))
			o.Debug("baseline failed", "series", s.Name, "method", bm.String(), "err", berr)
			continue
		}
		score := metrics.Evaluate(test.Values, bfc.Mean)
		baselines[bm.String()] = score
		if !(champion.Score.RMSE <= score.RMSE) {
			beats = false
		}
	}

	run.Set("models_evaluated", len(results))
	res := &Result{
		SeriesName:      s.Name,
		Technique:       e.opt.Technique,
		Analysis:        an,
		Candidates:      results,
		Champion:        champion,
		TestScore:       champion.Score,
		TestForecast:    testFC,
		TestActual:      append([]float64(nil), test.Values...),
		TrainLen:        train.Len(),
		TestLen:         test.Len(),
		Elapsed:         time.Since(began),
		ModelsEvaluated: len(results),
		Diagnostics:     ff.diag,
		Baselines:       baselines,
		BeatsBaselines:  beats,
		WarmStarted:     e.opt.Warm != nil,
		Live:            ff.live,
		Forecast: &Prediction{
			Start: work.End(),
			Freq:  work.Freq,
			Mean:  ff.mean, SE: ff.se, Lower: ff.lower, Upper: ff.upper,
			Level: e.opt.Level,
		},
	}
	return res, nil
}

// buildCandidates assembles the candidate list for the configured branch.
func (e *Engine) buildCandidates(train *timeseries.Series, an *Analysis) []CandidateResult {
	var out []CandidateResult
	switch e.opt.Technique {
	case TechniqueHES:
		methods := []ets.Method{ets.Simple, ets.Holt, ets.DampedTrend}
		if an.Period >= 2 && train.Len() >= 2*an.Period+3 {
			methods = append(methods, ets.HoltWinters, ets.HoltWintersDamped)
		}
		for _, m := range methods {
			out = append(out, CandidateResult{Label: "HES " + m.String(), etsKind: m, isETS: true})
		}
	case TechniqueTBATS:
		periods := []int{max(an.Period, train.Freq.Period())}
		for _, p := range an.ExtraPeriods {
			if len(periods) < 2 {
				periods = append(periods, p)
			}
		}
		for _, cfg := range tbatsCandidates(periods) {
			cfg := cfg
			out = append(out, CandidateResult{Label: cfg.String(), tbatsCfg: &cfg})
		}
	case TechniqueARIMA:
		var cands []arima.Candidate
		if e.opt.FullGrid {
			cands = arima.ARIMAGrid()
		} else {
			cands = arima.PrunedGrid(train.Values, an.D, 0, 0, false, e.opt.MaxCandidates)
		}
		for _, c := range cands {
			out = append(out, CandidateResult{Label: "ARIMA " + c.Spec.String(), cand: c})
		}
	default: // TechniqueSARIMAX
		seasonal := an.Period >= 2
		var cands []arima.Candidate
		if e.opt.FullGrid {
			cands = arima.SARIMAXExogFourierGrid(max(an.Period, 2))
		} else {
			cands = arima.PrunedGrid(train.Values, an.D, an.SeasonalD, an.Period, seasonal, e.opt.MaxCandidates)
			// Augment the strongest shapes with exogenous and Fourier
			// variants, as in §6.3's "+ Exogenous (4) + Fourier Terms (2)".
			nAug := 4
			if nAug > len(cands) {
				nAug = len(cands)
			}
			if !e.opt.DisableExog && len(an.Shocks) > 0 {
				for i := 0; i < nAug; i++ {
					c := cands[i]
					c.UseExog = true
					cands = append(cands, c)
				}
			}
			if !e.opt.DisableFourier && len(an.ExtraPeriods) > 0 {
				for i := 0; i < min(2, len(cands)); i++ {
					c := cands[i]
					c.UseExog = !e.opt.DisableExog && len(an.Shocks) > 0
					c.UseFourier = true
					cands = append(cands, c)
				}
			}
		}
		for _, c := range cands {
			// Drop orders the training window cannot support.
			if need := c.Spec.LostObservations() + c.Spec.MaxARLag() + c.Spec.MaxMALag() + 10; need > train.Len() {
				continue
			}
			label := "SARIMAX " + c.Spec.String()
			if !c.Spec.IsSeasonal() {
				label = "ARIMA " + c.Spec.String()
			}
			if c.UseFourier {
				// One candidate per harmonic count K (§4.4: the K giving
				// the best RMSE wins).
				for _, k := range e.opt.FourierK {
					out = append(out, CandidateResult{
						Label:    fmt.Sprintf("%s+exog+fourierK%d", label, k),
						cand:     c,
						fourierK: k,
					})
				}
				continue
			}
			if c.UseExog {
				label += "+exog"
			}
			out = append(out, CandidateResult{Label: label, cand: c})
		}
	}
	return out
}

// evaluate fits every candidate on train and scores it on test, using a
// worker pool. Each candidate gets a child span of parent recording its
// family, order label, hold-out RMSE, duration and error, plus the
// models_fitted_total / fit_errors_total counters and a per-technique
// fit-duration histogram. Cancelling ctx stops feeding the pool, aborts
// in-flight fits via their optimisers, and marks unqueued candidates
// failed; a per-candidate panic is contained to that candidate.
func (e *Engine) evaluate(ctx context.Context, train, test []float64, an *Analysis, cands []CandidateResult, rc *runCache, parent *obs.Span) []CandidateResult {
	o := e.opt.Obs
	jobs := make(chan int)
	out := make([]CandidateResult, len(cands))
	copy(out, cands)
	queued := make([]bool, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < e.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				e.fitCandidate(ctx, &out[idx], train, test, an, rc, parent)
			}
		}()
	}
	// The jobs channel is unbuffered, so once ctx is done no worker may
	// ever receive again — the send must select on ctx.Done or the
	// producer deadlocks.
feed:
	for i := range cands {
		select {
		case jobs <- i:
			queued[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for i := range out {
		if !queued[i] {
			markFailed(&out[i], fmt.Errorf("fit-score: %w", ctx.Err()))
			o.Count("fit_errors_total", 1, obs.L("cause", obs.ErrClass(ctx.Err())))
		}
	}
	return out
}

// fitCandidate fits and scores one candidate under its own span, fit
// deadline and panic barrier, writing the outcome into c.
func (e *Engine) fitCandidate(ctx context.Context, c *CandidateResult, train, test []float64, an *Analysis, rc *runCache, parent *obs.Span) {
	o := e.opt.Obs
	csp := parent.Child("fit")
	csp.Set("candidate", c.Label)
	csp.Set("family", candidateFamily(c))
	fctx := ctx
	if e.opt.FitTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, e.opt.FitTimeout)
		defer cancel()
	}
	began := time.Now()
	fc, aic, err := e.fitScoreSafe(fctx, c, train, an, rc, len(test))
	c.FitDuration = time.Since(began)
	c.AIC = aic
	o.Count("models_fitted_total", 1)
	fitTrace := ""
	if tsc := csp.Context(); !tsc.IsZero() {
		fitTrace = tsc.Trace.String()
	}
	o.ObserveDurationTraced("fit_duration_seconds", c.FitDuration, fitTrace,
		obs.L("technique", e.opt.Technique.String()))
	if err != nil {
		markFailed(c, err)
		cause := obs.ErrClass(err)
		o.Count("fit_errors_total", 1, obs.L("cause", cause))
		o.Debug("candidate failed", "candidate", c.Label, "cause", cause, "err", err)
		if cause != "error" {
			csp.Set("cause", cause)
		}
		csp.Fail(err)
		csp.End()
		return
	}
	c.Score = metrics.Evaluate(test, fc)
	csp.Set("rmse", c.Score.RMSE)
	csp.Set("aic", aic)
	csp.End()
	o.Debug("candidate scored", "candidate", c.Label,
		"rmse", c.Score.RMSE, "dur", c.FitDuration)
}

// fitScoreSafe wraps fitScore with a panic barrier: a numerical blow-up
// inside one candidate's optimiser kills that candidate, not the run.
func (e *Engine) fitScoreSafe(ctx context.Context, c *CandidateResult, train []float64, an *Analysis, rc *runCache, h int) (fc []float64, aic float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.opt.Obs.Count("fit_panics_total", 1)
			fc, aic = nil, math.NaN()
			err = fmt.Errorf("candidate %q panicked: %v", c.Label, r)
		}
	}()
	if e.opt.fitHook != nil {
		if herr := e.opt.fitHook(ctx, c.Label); herr != nil {
			return nil, math.NaN(), herr
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, math.NaN(), fmt.Errorf("fit aborted: %w", cerr)
	}
	return e.fitScore(ctx, *c, train, an, rc, h)
}

// markFailed records a candidate failure so ranking sinks it.
func markFailed(c *CandidateResult, err error) {
	c.Err = err
	c.Score = metrics.Score{RMSE: math.NaN(), MAPE: math.NaN(), MAPA: math.NaN()}
}

// tbatsCandidates enumerates a compact TBATS structure set (the §4.3
// alternatives): trend on/off, damping, ARMA errors, two harmonic levels.
func tbatsCandidates(periods []int) []tbats.Config {
	harmonics := func(k int) []int {
		hs := make([]int, len(periods))
		for i, p := range periods {
			ki := k
			if 2*ki > p {
				ki = p / 2
			}
			if ki < 1 {
				ki = 1
			}
			hs[i] = ki
		}
		return hs
	}
	var out []tbats.Config
	for _, trend := range []struct{ t, d bool }{{false, false}, {true, false}, {true, true}} {
		for _, arma := range []struct{ p, q int }{{0, 0}, {1, 1}} {
			for _, k := range []int{1, 3} {
				out = append(out, tbats.Config{
					Periods: periods, Harmonics: harmonics(k),
					UseTrend: trend.t, UseDamping: trend.d,
					ARMAP: arma.p, ARMAQ: arma.q,
				})
			}
		}
	}
	return out
}

// warmVec returns the incumbent's optimiser-space seed when warm options
// are set and the candidate is the incumbent champion, nil otherwise. The
// vector is read-only for the optimiser, so concurrent fits may share it.
func (e *Engine) warmVec(label string) []float64 {
	w := e.opt.Warm
	if w == nil || w.ChampionLabel != label || len(w.Params) == 0 {
		return nil
	}
	return w.Params
}

// fitScore fits one candidate on train and forecasts the test window.
// ctx reaches the family optimisers, carrying cancellation and the
// per-candidate fit deadline.
func (e *Engine) fitScore(ctx context.Context, c CandidateResult, train []float64, an *Analysis, rc *runCache, h int) ([]float64, float64, error) {
	if c.tbatsCfg != nil {
		m, err := tbats.Fit(*c.tbatsCfg, train, tbats.FitOptions{Ctx: ctx, Obs: e.opt.Obs, WarmStart: e.warmVec(c.Label)})
		if err != nil {
			return nil, math.NaN(), err
		}
		fc, err := m.Forecast(h, e.opt.Level)
		if err != nil {
			return nil, math.NaN(), err
		}
		return fc.Mean, m.AIC, nil
	}
	if c.isETS {
		m, err := ets.Fit(c.etsKind, train, ets.FitOptions{Period: an.Period, Ctx: ctx, Obs: e.opt.Obs, WarmStart: e.warmVec(c.Label)})
		if err != nil {
			return nil, math.NaN(), err
		}
		fc, err := m.Forecast(h, e.opt.Level)
		if err != nil {
			return nil, math.NaN(), err
		}
		return fc.Mean, m.AIC, nil
	}
	regs, err := rc.regsFor(e, c, an, len(train))
	if err != nil {
		return nil, math.NaN(), err
	}
	var prediff []float64
	if regs.Empty() {
		prediff = rc.prediffFor(c.cand.Spec, len(train))
	}
	ws := rc.workspace()
	defer rc.release(ws)
	m, err := arima.Fit(c.cand.Spec, train, regs.SliceTrain(len(train)), arima.FitOptions{
		Ctx: ctx, Obs: e.opt.Obs, Workspace: ws, PrediffedY: prediff,
		WarmStart: e.warmVec(c.Label),
	})
	if err != nil {
		return nil, math.NaN(), err
	}
	fc, err := m.Forecast(h, regs.Future(len(train), h), e.opt.Level)
	if err != nil {
		return nil, math.NaN(), err
	}
	return fc.Mean, m.AIC, nil
}

// regressorsFor materialises the exogenous design for a candidate.
func (e *Engine) regressorsFor(c CandidateResult, an *Analysis, n int) (*Regressors, error) {
	var parts []*Regressors
	if c.cand.UseExog && !e.opt.DisableExog {
		parts = append(parts, ShockRegressors(an.Shocks, max(an.Period, 2), n))
	}
	if c.cand.UseFourier && !e.opt.DisableFourier && len(an.ExtraPeriods) > 0 {
		k := c.fourierK
		if k <= 0 {
			k = 1
		}
		fr, err := FourierRegressors(an.ExtraPeriods, k, n)
		if err != nil {
			return nil, err
		}
		parts = append(parts, fr)
	}
	return Merge(parts...), nil
}

// refitForecast reproduces the champion's test-window forecast (train
// fit) for charting.
func (e *Engine) refitForecast(ctx context.Context, c CandidateResult, train []float64, an *Analysis, rc *runCache, h int) ([]float64, error) {
	fc, _, err := e.fitScore(ctx, c, train, an, rc, h)
	return fc, err
}

// fullFit bundles the production forecast of the full-series champion
// refit together with the fitted model it came from, retained as the
// run's LiveModel.
type fullFit struct {
	mean, se, lower, upper []float64
	diag                   *arima.Diagnostics
	live                   *LiveModel
}

// fullForecast refits the champion on the whole series and produces the
// production forecast with error bars. The fitted model is kept alive in
// the returned LiveModel so later observations can advance its state
// without refitting.
func (e *Engine) fullForecast(ctx context.Context, c CandidateResult, full []float64, an *Analysis, rc *runCache, h int) (*fullFit, error) {
	live := &LiveModel{family: candidateFamily(&c), level: e.opt.Level, n: len(full)}
	if c.tbatsCfg != nil {
		m, ferr := tbats.Fit(*c.tbatsCfg, full, tbats.FitOptions{Ctx: ctx, Obs: e.opt.Obs, WarmStart: e.warmVec(c.Label)})
		if ferr != nil {
			return nil, ferr
		}
		fc, ferr := m.Forecast(h, e.opt.Level)
		if ferr != nil {
			return nil, ferr
		}
		live.tbats = m
		return &fullFit{mean: fc.Mean, se: fc.SE, lower: fc.Lower, upper: fc.Upper, live: live}, nil
	}
	if c.isETS {
		m, ferr := ets.Fit(c.etsKind, full, ets.FitOptions{Period: an.Period, Ctx: ctx, Obs: e.opt.Obs, WarmStart: e.warmVec(c.Label)})
		if ferr != nil {
			return nil, ferr
		}
		fc, ferr := m.Forecast(h, e.opt.Level)
		if ferr != nil {
			return nil, ferr
		}
		live.ets = m
		return &fullFit{mean: fc.Mean, se: fc.SE, lower: fc.Lower, upper: fc.Upper, live: live}, nil
	}
	regs, ferr := rc.regsFor(e, c, an, len(full))
	if ferr != nil {
		return nil, ferr
	}
	ws := rc.workspace()
	defer rc.release(ws)
	m, ferr := arima.Fit(c.cand.Spec, full, regs.SliceTrain(len(full)), arima.FitOptions{
		Ctx: ctx, Obs: e.opt.Obs, Workspace: ws, WarmStart: e.warmVec(c.Label),
	})
	if ferr != nil {
		return nil, ferr
	}
	fc, ferr := m.Forecast(h, regs.Future(len(full), h), e.opt.Level)
	if ferr != nil {
		return nil, ferr
	}
	d := m.Diagnose()
	live.arima = m
	live.regs = regs
	return &fullFit{mean: fc.Mean, se: fc.SE, lower: fc.Lower, upper: fc.Upper, diag: &d, live: live}, nil
}
