package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metricstore"
	"repro/internal/timeseries"
)

// FleetOptions configures a fleet run.
type FleetOptions struct {
	// Engine is the per-series engine configuration.
	Engine Options
	// Freq is the modelling granularity series are aggregated to.
	Freq timeseries.Frequency
	// Concurrency bounds simultaneous engine runs (0 → 4). Each engine
	// additionally parallelises its own grid, so total parallelism is
	// roughly Concurrency × Engine.Workers.
	Concurrency int
	// SkipFresh skips series whose stored champion is still usable —
	// the paper's "we simply re-train … unless" rule. Requires Store.
	SkipFresh bool
	// Store receives champions (optional unless SkipFresh).
	Store *ModelStore
}

// FleetItem is one fleet run outcome.
type FleetItem struct {
	Key string
	// Skipped is true when a fresh stored champion made re-training
	// unnecessary.
	Skipped bool
	Result  *Result
	Err     error
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	Items   []FleetItem
	Elapsed time.Duration
	// Trained, Skipped, Failed count outcomes.
	Trained, Skipped, Failed int
}

// RunFleet runs the learning engine over every series in the repository
// between from and to — the §8 operational mode ("applied across several
// thousand customers, covering 1000's of workloads"). Champions land in
// opt.Store when provided. Items are returned in key order.
func RunFleet(repo *metricstore.Store, from, to time.Time, opt FleetOptions) (*FleetResult, error) {
	if repo == nil {
		return nil, fmt.Errorf("core: nil repository")
	}
	if opt.SkipFresh && opt.Store == nil {
		return nil, fmt.Errorf("core: SkipFresh requires a model store")
	}
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 4
	}
	keys := repo.Keys()
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: repository is empty")
	}

	items := make([]FleetItem, len(keys))
	began := time.Now()
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k metricstore.Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			item := FleetItem{Key: k.String()}
			defer func() { items[i] = item }()

			if opt.SkipFresh {
				if _, usable := opt.Store.Get(k.String()); usable {
					item.Skipped = true
					return
				}
			}
			ser, err := repo.Series(k, opt.Freq, from, to)
			if err != nil {
				item.Err = err
				return
			}
			eng, err := NewEngine(opt.Engine)
			if err != nil {
				item.Err = err
				return
			}
			res, err := eng.Run(ser)
			if err != nil {
				item.Err = err
				return
			}
			item.Result = res
			if opt.Store != nil {
				opt.Store.Put(k.String(), res)
			}
		}(i, k)
	}
	wg.Wait()

	out := &FleetResult{Items: items, Elapsed: time.Since(began)}
	sort.Slice(out.Items, func(a, b int) bool { return out.Items[a].Key < out.Items[b].Key })
	for _, it := range out.Items {
		switch {
		case it.Skipped:
			out.Skipped++
		case it.Err != nil:
			out.Failed++
		default:
			out.Trained++
		}
	}
	return out, nil
}
