package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metricstore"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// FleetOptions configures a fleet run.
type FleetOptions struct {
	// Engine is the per-series engine configuration.
	Engine Options
	// Freq is the modelling granularity series are aggregated to.
	Freq timeseries.Frequency
	// Concurrency bounds simultaneous engine runs (0 → 4). Each engine
	// additionally parallelises its own grid, so total parallelism is
	// roughly Concurrency × Engine.Workers.
	Concurrency int
	// SkipFresh skips series whose stored champion is still usable —
	// the paper's "we simply re-train … unless" rule. Requires Store.
	SkipFresh bool
	// Store receives champions (optional unless SkipFresh).
	Store *ModelStore
	// Obs receives fleet logs, per-workload spans and counters. When set
	// it is also injected into the per-series engines (unless Engine.Obs
	// already names a different observer). nil disables observability.
	Obs *obs.Observer
}

// FleetItem is one fleet run outcome.
type FleetItem struct {
	Key string
	// Skipped is true when a fresh stored champion made re-training
	// unnecessary.
	Skipped bool
	Result  *Result
	Err     error
	// Elapsed is this workload's wall time (fetch + engine run), so slow
	// series are distinguishable from skipped ones in the result.
	Elapsed time.Duration
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	// Items holds the attempted workloads in key order. On cancellation
	// it is partial: workloads never dequeued before ctx fired are
	// absent, not recorded as failures.
	Items   []FleetItem
	Elapsed time.Duration
	// Trained, Skipped, Failed count outcomes.
	Trained, Skipped, Failed int
	// Canceled is true when the run stopped early because ctx was done;
	// Items then covers only the workloads attempted before the stop.
	Canceled bool
	// Unprocessed counts workloads never attempted due to cancellation.
	Unprocessed int
	// FirstErr is the first failure in key order (nil when every
	// workload trained or was skipped); FirstErrKey names its workload.
	FirstErr    error
	FirstErrKey string
}

// RunFleet runs the learning engine over every series in the repository
// between from and to — the §8 operational mode ("applied across several
// thousand customers, covering 1000's of workloads"). Champions land in
// opt.Store when provided. Items are returned in key order.
//
// A bounded pool of opt.Concurrency workers drains the key queue; when
// ctx is cancelled the queue stops feeding, in-flight engine runs abort
// cooperatively, and the partial FleetResult comes back with Canceled
// set — never an error, so completed champions survive a shutdown.
func RunFleet(ctx context.Context, repo *metricstore.Store, from, to time.Time, opt FleetOptions) (*FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if repo == nil {
		return nil, fmt.Errorf("core: nil repository")
	}
	if opt.SkipFresh && opt.Store == nil {
		return nil, fmt.Errorf("core: SkipFresh requires a model store")
	}
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 4
	}
	o := opt.Obs
	engineOpt := opt.Engine
	if engineOpt.Obs == nil {
		engineOpt.Obs = o
	}
	keys := repo.Keys()
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: repository is empty")
	}

	root := o.StartSpanFrom(ctx, "fleet.run")
	defer root.End()
	root.Set("workloads", len(keys))
	root.Set("concurrency", conc)
	o.Info("fleet run start", "workloads", len(keys), "concurrency", conc,
		"from", from.Format(time.RFC3339), "to", to.Format(time.RFC3339))

	items := make([]FleetItem, len(keys))
	attempted := make([]bool, len(keys))
	began := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				items[i] = fleetWorkload(ctx, repo, keys[i], from, to, engineOpt, opt, root, o)
			}
		}()
	}
	// Unbuffered queue: each send must race ctx.Done, otherwise a
	// cancellation with all workers gone would deadlock the producer.
feed:
	for i := range keys {
		select {
		case jobs <- i:
			attempted[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	out := &FleetResult{Elapsed: time.Since(began)}
	for i := range items {
		if attempted[i] {
			out.Items = append(out.Items, items[i])
		} else {
			out.Unprocessed++
		}
	}
	if ctx.Err() != nil {
		out.Canceled = true
		o.Count("fleet_runs_canceled_total", 1)
	}
	sort.Slice(out.Items, func(a, b int) bool { return out.Items[a].Key < out.Items[b].Key })
	for _, it := range out.Items {
		switch {
		case it.Skipped:
			out.Skipped++
		case it.Err != nil:
			out.Failed++
			if out.FirstErr == nil {
				out.FirstErr = it.Err
				out.FirstErrKey = it.Key
			}
		default:
			out.Trained++
		}
	}
	root.Set("trained", out.Trained)
	root.Set("skipped", out.Skipped)
	root.Set("failed", out.Failed)
	if out.Canceled {
		root.Set("canceled", true)
		root.Set("unprocessed", out.Unprocessed)
		o.Warn("fleet run canceled", "trained", out.Trained, "skipped", out.Skipped,
			"failed", out.Failed, "unprocessed", out.Unprocessed, "dur", out.Elapsed)
	} else {
		o.Info("fleet run done", "trained", out.Trained, "skipped", out.Skipped,
			"failed", out.Failed, "dur", out.Elapsed)
	}
	return out, nil
}

// fleetWorkload trains one workload under its own span, returning the
// item via a named result so the deferred accounting sees the final
// state.
func fleetWorkload(ctx context.Context, repo *metricstore.Store, k metricstore.Key,
	from, to time.Time, engineOpt Options, opt FleetOptions, root *obs.Span, o *obs.Observer) (item FleetItem) {

	item = FleetItem{Key: k.String()}
	wbegan := time.Now()
	wsp := root.Child("workload")
	wsp.Set("key", item.Key)
	defer func() {
		item.Elapsed = time.Since(wbegan)
		wsp.End()
		switch {
		case item.Skipped:
			o.Count("fleet_workloads_skipped_fresh_total", 1)
			o.Debug("workload skipped (champion fresh)", "key", item.Key)
		case item.Err != nil:
			o.Count("fleet_workloads_failed_total", 1)
			o.Warn("workload failed", "key", item.Key, "err", item.Err, "dur", item.Elapsed)
		default:
			o.Count("fleet_workloads_run_total", 1)
			o.Info("workload trained", "key", item.Key,
				"champion", item.Result.Champion.Label,
				"rmse", item.Result.TestScore.RMSE, "dur", item.Elapsed)
		}
	}()

	if opt.SkipFresh {
		if _, usable := opt.Store.Get(k.String()); usable {
			item.Skipped = true
			wsp.Set("skipped", true)
			return item
		}
	}
	fsp := wsp.Child("fetch")
	ser, err := repo.Series(k, opt.Freq, from, to)
	if err != nil {
		item.Err = fmt.Errorf("fetch: %w", err)
		// Fail before End: an ended span is immutable, so the order
		// matters for the error to land on the fetch span.
		fsp.Fail(item.Err)
		fsp.End()
		wsp.Fail(item.Err)
		return item
	}
	fsp.End()
	eng, err := NewEngine(engineOpt)
	if err != nil {
		item.Err = err
		wsp.Fail(err)
		return item
	}
	res, err := eng.WithParentSpan(wsp).Run(ctx, ser)
	if err != nil {
		item.Err = err
		wsp.Fail(err)
		return item
	}
	item.Result = res
	if opt.Store != nil {
		opt.Store.Put(k.String(), res)
	}
	return item
}
