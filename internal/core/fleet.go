package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metricstore"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// FleetOptions configures a fleet run.
type FleetOptions struct {
	// Engine is the per-series engine configuration.
	Engine Options
	// Freq is the modelling granularity series are aggregated to.
	Freq timeseries.Frequency
	// Concurrency bounds simultaneous engine runs (0 → 4). Each engine
	// additionally parallelises its own grid, so total parallelism is
	// roughly Concurrency × Engine.Workers.
	Concurrency int
	// SkipFresh skips series whose stored champion is still usable —
	// the paper's "we simply re-train … unless" rule. Requires Store.
	SkipFresh bool
	// Store receives champions (optional unless SkipFresh).
	Store *ModelStore
	// Obs receives fleet logs, per-workload spans and counters. When set
	// it is also injected into the per-series engines (unless Engine.Obs
	// already names a different observer). nil disables observability.
	Obs *obs.Observer
}

// FleetItem is one fleet run outcome.
type FleetItem struct {
	Key string
	// Skipped is true when a fresh stored champion made re-training
	// unnecessary.
	Skipped bool
	Result  *Result
	Err     error
	// Elapsed is this workload's wall time (fetch + engine run), so slow
	// series are distinguishable from skipped ones in the result.
	Elapsed time.Duration
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	Items   []FleetItem
	Elapsed time.Duration
	// Trained, Skipped, Failed count outcomes.
	Trained, Skipped, Failed int
	// FirstErr is the first failure in key order (nil when every
	// workload trained or was skipped); FirstErrKey names its workload.
	FirstErr    error
	FirstErrKey string
}

// RunFleet runs the learning engine over every series in the repository
// between from and to — the §8 operational mode ("applied across several
// thousand customers, covering 1000's of workloads"). Champions land in
// opt.Store when provided. Items are returned in key order.
func RunFleet(repo *metricstore.Store, from, to time.Time, opt FleetOptions) (*FleetResult, error) {
	if repo == nil {
		return nil, fmt.Errorf("core: nil repository")
	}
	if opt.SkipFresh && opt.Store == nil {
		return nil, fmt.Errorf("core: SkipFresh requires a model store")
	}
	conc := opt.Concurrency
	if conc <= 0 {
		conc = 4
	}
	o := opt.Obs
	engineOpt := opt.Engine
	if engineOpt.Obs == nil {
		engineOpt.Obs = o
	}
	keys := repo.Keys()
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: repository is empty")
	}

	root := o.StartSpan("fleet.run")
	defer root.End()
	root.Set("workloads", len(keys))
	root.Set("concurrency", conc)
	o.Info("fleet run start", "workloads", len(keys), "concurrency", conc,
		"from", from.Format(time.RFC3339), "to", to.Format(time.RFC3339))

	items := make([]FleetItem, len(keys))
	began := time.Now()
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k metricstore.Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			item := FleetItem{Key: k.String()}
			wbegan := time.Now()
			wsp := root.Child("workload")
			wsp.Set("key", item.Key)
			defer func() {
				item.Elapsed = time.Since(wbegan)
				wsp.End()
				items[i] = item
				switch {
				case item.Skipped:
					o.Count("fleet_workloads_skipped_fresh_total", 1)
					o.Debug("workload skipped (champion fresh)", "key", item.Key)
				case item.Err != nil:
					o.Count("fleet_workloads_failed_total", 1)
					o.Warn("workload failed", "key", item.Key, "err", item.Err, "dur", item.Elapsed)
				default:
					o.Count("fleet_workloads_run_total", 1)
					o.Info("workload trained", "key", item.Key,
						"champion", item.Result.Champion.Label,
						"rmse", item.Result.TestScore.RMSE, "dur", item.Elapsed)
				}
			}()

			if opt.SkipFresh {
				if _, usable := opt.Store.Get(k.String()); usable {
					item.Skipped = true
					wsp.Set("skipped", true)
					return
				}
			}
			fsp := wsp.Child("fetch")
			ser, err := repo.Series(k, opt.Freq, from, to)
			fsp.End()
			if err != nil {
				item.Err = fmt.Errorf("fetch: %w", err)
				fsp.Fail(item.Err)
				wsp.Fail(item.Err)
				return
			}
			eng, err := NewEngine(engineOpt)
			if err != nil {
				item.Err = err
				wsp.Fail(err)
				return
			}
			res, err := eng.WithParentSpan(wsp).Run(ser)
			if err != nil {
				item.Err = err
				wsp.Fail(err)
				return
			}
			item.Result = res
			if opt.Store != nil {
				opt.Store.Put(k.String(), res)
			}
		}(i, k)
	}
	wg.Wait()

	out := &FleetResult{Items: items, Elapsed: time.Since(began)}
	sort.Slice(out.Items, func(a, b int) bool { return out.Items[a].Key < out.Items[b].Key })
	for _, it := range out.Items {
		switch {
		case it.Skipped:
			out.Skipped++
		case it.Err != nil:
			out.Failed++
			if out.FirstErr == nil {
				out.FirstErr = it.Err
				out.FirstErrKey = it.Key
			}
		default:
			out.Trained++
		}
	}
	root.Set("trained", out.Trained)
	root.Set("skipped", out.Skipped)
	root.Set("failed", out.Failed)
	o.Info("fleet run done", "trained", out.Trained, "skipped", out.Skipped,
		"failed", out.Failed, "dur", out.Elapsed)
	return out, nil
}
