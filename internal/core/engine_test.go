package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// seasonalTrending builds a 1008-point hourly series with daily season,
// trend, and midnight shocks — the paper's OLTP shape in miniature.
func seasonalTrending(seed int64) *timeseries.Series {
	var shocks []int
	for d := 0; d < 42; d++ {
		shocks = append(shocks, d*24)
	}
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 1008, Level: 100, Trend: 0.05,
		Periods: []int{24}, Amps: []float64{15},
		Noise: 1.0, ShockAt: shocks, ShockAmp: 40, Seed: seed,
	})
	return timeseries.New("oltp-mini", t0, timeseries.Hourly, y)
}

func TestEngineSARIMAXEndToEnd(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(1))
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: 1008 obs → 984 train + 24 test.
	if res.TrainLen != 984 || res.TestLen != 24 {
		t.Fatalf("split = %d/%d, want 984/24", res.TrainLen, res.TestLen)
	}
	if res.Champion.Err != nil {
		t.Fatalf("champion failed: %v", res.Champion.Err)
	}
	if math.IsNaN(res.TestScore.RMSE) || res.TestScore.RMSE <= 0 {
		t.Fatalf("RMSE = %v", res.TestScore.RMSE)
	}
	// Forecast must exist, be 24 long, with ordered error bars.
	if res.Forecast == nil || len(res.Forecast.Mean) != 24 {
		t.Fatal("production forecast missing")
	}
	for k := range res.Forecast.Mean {
		if !(res.Forecast.Lower[k] <= res.Forecast.Mean[k] && res.Forecast.Mean[k] <= res.Forecast.Upper[k]) {
			t.Fatal("error bars out of order")
		}
	}
	// Champion should beat a naive flat forecast.
	naive := make([]float64, 24)
	last := res.TestActual[0]
	for k := range naive {
		naive[k] = last
	}
	naiveRMSE := metrics.RMSE(res.TestActual, naive)
	if res.TestScore.RMSE > naiveRMSE {
		t.Fatalf("champion (%v) worse than naive (%v)", res.TestScore.RMSE, naiveRMSE)
	}
	// Candidates ranked best-first.
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.Err == nil && b.Err == nil && a.Score.RMSE > b.Score.RMSE+1e-9 {
			t.Fatal("candidates not sorted by RMSE")
		}
	}
}

func TestEngineHESEndToEnd(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Champion.Label, "HES") {
		t.Fatalf("champion = %q, want an HES model", res.Champion.Label)
	}
	// Strong seasonality: the champion should be a seasonal HES variant.
	if !strings.Contains(res.Champion.Label, "Holt-Winters") {
		t.Logf("note: champion is %q (seasonal data usually selects Holt-Winters)", res.Champion.Label)
	}
	if len(res.Forecast.Mean) != 24 {
		t.Fatal("wrong horizon")
	}
}

func TestEngineARIMABaseline(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueARIMA, MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if strings.Contains(c.Label, "(") && strings.Contains(c.Label, ",1,1,24") {
			t.Fatalf("ARIMA branch produced seasonal model: %q", c.Label)
		}
	}
}

// TestSeasonalBeatsPlainARIMA pins the paper's central empirical claim:
// on seasonal data the seasonal family wins (Table 2: "there is a
// significant jump in accuracy when the seasonal component … is taken
// into consideration").
func TestSeasonalBeatsPlainARIMA(t *testing.T) {
	s := seasonalTrending(4)
	sx, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewEngine(Options{Technique: TechniqueARIMA, MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	resSX, err := sx.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	resAR, err := ar.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if resSX.TestScore.RMSE >= resAR.TestScore.RMSE {
		t.Fatalf("SARIMAX (%.3f) should beat ARIMA (%.3f) on seasonal data",
			resSX.TestScore.RMSE, resAR.TestScore.RMSE)
	}
}

// TestExogenousImprovesShockForecast pins the second claim: modelling
// known shocks as exogenous variables improves accuracy on shocked data.
func TestExogenousImprovesShockForecast(t *testing.T) {
	s := seasonalTrending(5)
	with, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 6, DisableExog: true})
	if err != nil {
		t.Fatal(err)
	}
	resWith, err := with.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := without.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// The exog run must consider exog candidates and not be (much) worse.
	hasExog := false
	for _, c := range resWith.Candidates {
		if strings.Contains(c.Label, "exog") {
			hasExog = true
		}
	}
	if !hasExog {
		t.Fatal("no exogenous candidates were evaluated")
	}
	if resWith.TestScore.RMSE > resWithout.TestScore.RMSE*1.05 {
		t.Fatalf("exog run (%.3f) should not lose to no-exog (%.3f)",
			resWith.TestScore.RMSE, resWithout.TestScore.RMSE)
	}
}

func TestEngineInterpolatesGaps(t *testing.T) {
	s := seasonalTrending(6)
	// Punch holes.
	for _, i := range []int{50, 51, 52, 300, 700} {
		s.Values[i] = math.NaN()
	}
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), s); err != nil {
		t.Fatalf("engine should repair gaps: %v", err)
	}
	// Original series untouched (engine clones).
	if !math.IsNaN(s.Values[50]) {
		t.Fatal("engine mutated the caller's series")
	}
}

func TestEngineShortSeriesFails(t *testing.T) {
	e, _ := NewEngine(Options{Technique: TechniqueHES})
	short := timeseries.New("s", t0, timeseries.Hourly, make([]float64, 10))
	if _, err := e.Run(context.Background(), short); err == nil {
		t.Fatal("short series should fail")
	}
}

func TestEngineOptionsValidation(t *testing.T) {
	if _, err := NewEngine(Options{Level: 2}); err == nil {
		t.Fatal("bad level should fail")
	}
	if _, err := NewEngine(Options{Workers: -1}); err == nil {
		t.Fatal("negative workers should fail")
	}
}

func TestEngineHorizonOverride(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueHES, Horizon: 48})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forecast.Mean) != 48 {
		t.Fatalf("horizon = %d, want 48", len(res.Forecast.Mean))
	}
	// Prediction timestamps continue from the series end.
	if !res.Forecast.TimeAt(0).Equal(t0.Add(1008 * time.Hour)) {
		t.Fatalf("forecast start = %v", res.Forecast.TimeAt(0))
	}
}

func TestEngineParallelMatchesSerial(t *testing.T) {
	s := seasonalTrending(8)
	serial, err := NewEngine(Options{Technique: TechniqueSARIMAX, Workers: 1, MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEngine(Options{Technique: TechniqueSARIMAX, Workers: 8, MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := serial.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parallel.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Champion.Label != r2.Champion.Label {
		t.Fatalf("parallelism changed the champion: %q vs %q", r1.Champion.Label, r2.Champion.Label)
	}
	if math.Abs(r1.TestScore.RMSE-r2.TestScore.RMSE) > 1e-9 {
		t.Fatalf("parallelism changed the score: %v vs %v", r1.TestScore.RMSE, r2.TestScore.RMSE)
	}
}
