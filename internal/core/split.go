package core

import (
	"fmt"

	"repro/internal/timeseries"
)

// SplitPolicy is one row of the paper's Table 1: how many observations a
// forecast at a given granularity wants, how they divide into train and
// test, and the prediction horizon.
type SplitPolicy struct {
	Freq       timeseries.Frequency
	Obs        int // preferred observation count
	Train      int
	Test       int
	Horizon    int
	HorizonLbl string
}

// Table1 holds the paper's machine-learning breakdown verbatim:
//
//	SARIMAX/HES Hourly: 1008 obs = 984 train + 24 test, predict 24 hours
//	SARIMAX/HES Daily:    90 obs =  83 train +  7 test, predict 7 days
//	SARIMAX/HES Weekly:   92 obs =  88 train +  4 test, predict 4 weeks
//
// The observation counts follow the Makridakis-competition guidance the
// paper cites ("for an effective hourly forecast 700 hourly data points
// … are required").
var Table1 = []SplitPolicy{
	{Freq: timeseries.Hourly, Obs: 1008, Train: 984, Test: 24, Horizon: 24, HorizonLbl: "24 hours"},
	{Freq: timeseries.Daily, Obs: 90, Train: 83, Test: 7, Horizon: 7, HorizonLbl: "7 days"},
	{Freq: timeseries.Weekly, Obs: 92, Train: 88, Test: 4, Horizon: 4, HorizonLbl: "4 weeks"},
}

// PolicyFor returns the Table 1 policy for a frequency.
func PolicyFor(freq timeseries.Frequency) (SplitPolicy, error) {
	for _, p := range Table1 {
		if p.Freq == freq {
			return p, nil
		}
	}
	return SplitPolicy{}, fmt.Errorf("core: no split policy for %v series", freq)
}

// Split applies the Table 1 policy to a series: when the series is longer
// than the policy's observation count the most recent Obs points are
// used; shorter series keep the policy's train:test ratio. An error is
// returned when fewer than two test windows of data exist.
func (p SplitPolicy) Split(s *timeseries.Series) (train, test *timeseries.Series, err error) {
	n := s.Len()
	if n < 3*p.Test {
		return nil, nil, fmt.Errorf("core: %d observations is too short for a %v split (need >= %d)", n, p.Freq, 3*p.Test)
	}
	work := s
	if n > p.Obs {
		work = s.Slice(n-p.Obs, n)
	}
	testLen := p.Test
	if work.Len() < p.Obs {
		// Keep the policy's proportion for shorter series.
		testLen = work.Len() * p.Test / p.Obs
		if testLen < 1 {
			testLen = 1
		}
	}
	return work.Split(testLen)
}
