package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// StalePolicy controls when a stored champion must be re-learned,
// per Figure 4: "That model is then stored in a central repository and
// used for a period of one week or until the model's RMSE drops to a
// point where it is rendered useless."
type StalePolicy struct {
	// MaxAge is the validity window (0 → 7 days, the paper's week).
	MaxAge time.Duration
	// DegradeFactor invalidates the model when its live RMSE exceeds the
	// selection RMSE by this multiple (0 → 2.0).
	DegradeFactor float64
}

func (p StalePolicy) maxAge() time.Duration {
	if p.MaxAge <= 0 {
		return 7 * 24 * time.Hour
	}
	return p.MaxAge
}

func (p StalePolicy) degrade() float64 {
	if p.DegradeFactor <= 0 {
		return 2.0
	}
	return p.DegradeFactor
}

// StoredModel is a champion kept by the ModelStore.
type StoredModel struct {
	// Key identifies the monitored series ("target/metric").
	Key string
	// Result is the engine run that produced the champion.
	Result *Result
	// FittedAt stamps when the model was learned.
	FittedAt time.Time
	// SelectionRMSE is the hold-out RMSE at selection time, the baseline
	// for degradation checks.
	SelectionRMSE float64
	// LiveRMSE tracks the most recent observed accuracy (NaN until the
	// first check-in).
	LiveRMSE float64
	// Invalidated is set when a degradation check failed.
	Invalidated bool
}

// ModelStore is the central model repository of §5.1, safe for concurrent
// use. Models are re-learned only when stale — the paper's "We simply
// re-train on the data unless … the time since the last use of the models
// lengthens beyond a certain period."
type ModelStore struct {
	mu     sync.RWMutex
	policy StalePolicy
	models map[string]*StoredModel
	now    func() time.Time
	obs    *obs.Observer
}

// SetObserver attaches an observer for staleness-watchdog counters and
// logs (modelstore_puts_total, modelstore_lookups_total{result=…},
// modelstore_invalidations_total, modelstore_evictions_total{reason=…}).
// nil detaches.
func (s *ModelStore) SetObserver(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
}

// NewModelStore returns an empty store with the given staleness policy.
func NewModelStore(policy StalePolicy) *ModelStore {
	return &ModelStore{
		policy: policy,
		models: make(map[string]*StoredModel),
		now:    time.Now,
	}
}

// SetClock overrides the time source (tests).
func (s *ModelStore) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Put stores (or replaces) the champion for a key.
func (s *ModelStore) Put(key string, res *Result) {
	s.mu.Lock()
	s.models[key] = &StoredModel{
		Key:           key,
		Result:        res,
		FittedAt:      s.now(),
		SelectionRMSE: res.TestScore.RMSE,
		LiveRMSE:      res.TestScore.RMSE,
	}
	o := s.obs
	s.mu.Unlock()
	o.Count("modelstore_puts_total", 1)
}

// ReplaceResult swaps the stored result for key in place while preserving
// the fit timestamp, selection score and invalidation bookkeeping — the
// advance path's store update: the champion did not change and no fit ran,
// only its state and forecast rolled forward, so age-based staleness must
// keep counting from the original fit. Returns false when the key is not
// stored (callers then fall back to a full Put via refit).
func (s *ModelStore) ReplaceResult(key string, res *Result) bool {
	s.mu.Lock()
	sm, ok := s.models[key]
	if ok {
		sm.Result = res
	}
	o := s.obs
	s.mu.Unlock()
	if ok {
		o.Count("modelstore_advances_total", 1)
	}
	return ok
}

// Get returns the stored champion and whether it is still usable. A stale
// or missing model returns usable=false, telling the caller to re-run the
// engine.
func (s *ModelStore) Get(key string) (m *StoredModel, usable bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sm, ok := s.models[key]
	if !ok {
		s.obs.Count("modelstore_lookups_total", 1, obs.L("result", "miss"))
		return nil, false
	}
	if sm.Invalidated {
		s.obs.Count("modelstore_lookups_total", 1, obs.L("result", "invalidated"))
		return sm, false
	}
	if s.now().Sub(sm.FittedAt) > s.policy.maxAge() {
		s.obs.Count("modelstore_lookups_total", 1, obs.L("result", "stale"))
		s.obs.Debug("stored model stale", "key", key, "fitted_at", sm.FittedAt.Format(time.RFC3339))
		return sm, false
	}
	s.obs.Count("modelstore_lookups_total", 1, obs.L("result", "hit"))
	return sm, true
}

// Peek returns the stored champion and its usability without bumping
// lookup counters or logging — for introspection endpoints that poll
// the store without polluting the operational metrics Get maintains.
func (s *ModelStore) Peek(key string) (m *StoredModel, usable bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sm, ok := s.models[key]
	if !ok {
		return nil, false
	}
	usable = !sm.Invalidated && s.now().Sub(sm.FittedAt) <= s.policy.maxAge()
	return sm, usable
}

// Now reads the store's clock — real time in production, the simulated
// clock in replay-driven serving, so status ages agree with the data.
func (s *ModelStore) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now()
}

// CheckIn reports fresh accuracy for a stored model: the caller compares
// recent actuals against the model's forecasts and submits the RMSE. The
// model is invalidated when accuracy degraded beyond the policy factor —
// the "continually assess the models performance" loop of §9.
// It returns whether the model remains usable.
func (s *ModelStore) CheckIn(key string, liveRMSE float64) (usable bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.models[key]
	if !ok {
		return false, fmt.Errorf("core: no stored model for %q", key)
	}
	sm.LiveRMSE = liveRMSE
	if !sm.Invalidated && sm.SelectionRMSE > 0 && liveRMSE > sm.SelectionRMSE*s.policy.degrade() {
		sm.Invalidated = true
		ratio := liveRMSE / sm.SelectionRMSE
		s.obs.Count("modelstore_invalidations_total", 1)
		s.obs.Count("modelstore_evictions_total", 1, obs.L("reason", "degraded"))
		s.obs.Warn("model invalidated (accuracy degraded)", "key", key,
			"selection_rmse", sm.SelectionRMSE, "live_rmse", liveRMSE,
			"degradation_ratio", fmt.Sprintf("%.2f", ratio),
			"limit", fmt.Sprintf("%.2f", s.policy.degrade()))
	}
	if sm.Invalidated {
		return false, nil
	}
	return s.now().Sub(sm.FittedAt) <= s.policy.maxAge(), nil
}

// Invalidate marks the stored champion for key unusable for the given
// reason — the path external quality signals (the monitor's drift
// detector, an operator action) use to force a refit without waiting
// for the RMSE degradation ratio or the age window. It shares the
// StalePolicy's bookkeeping: the eviction is counted under the reason
// and subsequent Gets report the model unusable. Reports whether a
// model was actually invalidated (false when the key is unknown or the
// model was already invalid).
func (s *ModelStore) Invalidate(key, reason string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.models[key]
	if !ok || sm.Invalidated {
		return false
	}
	sm.Invalidated = true
	s.obs.Count("modelstore_invalidations_total", 1)
	s.obs.Count("modelstore_evictions_total", 1, obs.L("reason", reason))
	s.obs.Warn("model invalidated", "key", key, "reason", reason)
	return true
}

// CheckInSeries is a convenience wrapper: it scores the stored champion's
// production forecast against observed actuals and checks in the RMSE.
func (s *ModelStore) CheckInSeries(key string, actual []float64) (usable bool, err error) {
	s.mu.RLock()
	sm, ok := s.models[key]
	s.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("core: no stored model for %q", key)
	}
	fc := sm.Result.Forecast
	if fc == nil || len(fc.Mean) == 0 {
		return false, fmt.Errorf("core: stored model for %q has no forecast", key)
	}
	n := len(actual)
	if n > len(fc.Mean) {
		n = len(fc.Mean)
	}
	if n == 0 {
		return false, fmt.Errorf("core: no actuals supplied for %q", key)
	}
	rmse := metrics.RMSE(actual[:n], fc.Mean[:n])
	return s.CheckIn(key, rmse)
}

// Keys lists the stored model keys.
func (s *ModelStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for k := range s.models {
		out = append(out, k)
	}
	return out
}

// Delete removes a stored model, counting the eviction when the key was
// actually held.
func (s *ModelStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.models[key]; ok {
		s.obs.Count("modelstore_evictions_total", 1, obs.L("reason", "deleted"))
	}
	delete(s.models, key)
}
