package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
)

func TestEngineRunCanceledContext(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, seasonalTrending(11)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled ctx = %v, want context.Canceled wrap", err)
	}
}

func TestEngineRunNilContext(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueHES, MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil, seasonalTrending(12)); err != nil { //nolint:staticcheck // nil ctx tolerance is part of the contract
		t.Fatalf("Run with nil ctx failed: %v", err)
	}
}

// TestEvaluateCancelNoDeadlock cancels the run from inside the first
// candidate fit: the producer's send must select on ctx.Done, so the
// run returns promptly instead of deadlocking on the jobs channel.
func TestEvaluateCancelNoDeadlock(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := obs.New(obs.Config{Metrics: true})
	e, err := NewEngine(Options{
		Technique: TechniqueHES,
		Workers:   1,
		Obs:       o,
		fitHook: func(fctx context.Context, label string) error {
			cancel()
			return fctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, rerr := e.Run(ctx, seasonalTrending(13))
		done <- rerr
	}()
	select {
	case rerr := <-done:
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled wrap", rerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked after mid-evaluate cancellation")
	}
	if n := o.Registry().CounterValue("fit_errors_total"); n < 1 {
		t.Fatalf("fit_errors_total = %d, want >= 1", n)
	}
}

// TestFitTimeoutIsolatesSlowCandidate wedges one candidate until its
// per-fit deadline fires and checks the champion still comes from the
// surviving candidates, with the timeout visible in the cause-labelled
// error counter.
func TestFitTimeoutIsolatesSlowCandidate(t *testing.T) {
	const slow = "HES SES"
	o := obs.New(obs.Config{Metrics: true})
	e, err := NewEngine(Options{
		Technique:  TechniqueHES,
		FitTimeout: 200 * time.Millisecond,
		Obs:        o,
		fitHook: func(fctx context.Context, label string) error {
			if label != slow {
				return nil
			}
			<-fctx.Done() // a runaway optimisation, stopped only by the deadline
			return fmt.Errorf("slow fit aborted: %w", fctx.Err())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(14))
	if err != nil {
		t.Fatalf("run failed outright: %v", err)
	}
	if res.Champion.Label == slow {
		t.Fatalf("timed-out candidate %q won", slow)
	}
	var timedOut *CandidateResult
	for i := range res.Candidates {
		if res.Candidates[i].Label == slow {
			timedOut = &res.Candidates[i]
		}
	}
	if timedOut == nil || timedOut.Err == nil {
		t.Fatalf("slow candidate not recorded as failed: %+v", timedOut)
	}
	if !errors.Is(timedOut.Err, context.DeadlineExceeded) {
		t.Fatalf("slow candidate err = %v, want DeadlineExceeded wrap", timedOut.Err)
	}
	reg := o.Registry()
	if n := reg.Counter("fit_errors_total", obs.L("cause", "timeout")).Value(); n != 1 {
		t.Fatalf("fit_errors_total{cause=timeout} = %d, want 1", n)
	}
}

func TestPanickingCandidateIsolated(t *testing.T) {
	const bomb = "HES Holt"
	o := obs.New(obs.Config{Metrics: true})
	e, err := NewEngine(Options{
		Technique: TechniqueHES,
		Obs:       o,
		fitHook: func(fctx context.Context, label string) error {
			if label == bomb {
				panic("numerical blow-up")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(15))
	if err != nil {
		t.Fatalf("one panicking candidate killed the run: %v", err)
	}
	if res.Champion.Label == bomb {
		t.Fatalf("panicking candidate %q won", bomb)
	}
	var failed *CandidateResult
	for i := range res.Candidates {
		if res.Candidates[i].Label == bomb {
			failed = &res.Candidates[i]
		}
	}
	if failed == nil || failed.Err == nil || !strings.Contains(failed.Err.Error(), "panicked") {
		t.Fatalf("panicking candidate not recorded: %+v", failed)
	}
	reg := o.Registry()
	if n := reg.CounterValue("fit_panics_total"); n != 1 {
		t.Fatalf("fit_panics_total = %d, want 1", n)
	}
	if n := reg.Counter("fit_errors_total", obs.L("cause", "error")).Value(); n != 1 {
		t.Fatalf("fit_errors_total{cause=error} = %d, want 1", n)
	}
}

// cancelOnLog cancels a context the first time the log stream mentions
// the trigger string — a deterministic way to stop a fleet run right
// after its first workload trains.
type cancelOnLog struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	trigger string
	cancel  context.CancelFunc
	fired   bool
}

func (w *cancelOnLog) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.fired && strings.Contains(w.buf.String(), w.trigger) {
		w.fired = true
		w.cancel()
	}
	return len(p), nil
}

func TestRunFleetCancelPartial(t *testing.T) {
	repo, from, to := fillRepo(t, 1008)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lw := &cancelOnLog{trigger: "workload trained", cancel: cancel}
	o := obs.New(obs.Config{Metrics: true, LogWriter: lw, LogLevel: obs.LevelInfo})

	before := runtime.NumGoroutine()
	began := time.Now()
	res, err := RunFleet(ctx, repo, from, to, FleetOptions{
		Engine:      Options{Technique: TechniqueHES},
		Freq:        timeseries.Hourly,
		Concurrency: 1,
		Obs:         o,
	})
	if err != nil {
		t.Fatalf("cancelled fleet run returned an error instead of partial results: %v", err)
	}
	if !res.Canceled {
		t.Fatal("FleetResult.Canceled not set after mid-run cancellation")
	}
	if res.Trained < 1 {
		t.Fatalf("trained = %d, want >= 1 (cancel fired after the first success)", res.Trained)
	}
	if got := len(res.Items) + res.Unprocessed; got != 3 {
		t.Fatalf("items(%d) + unprocessed(%d) = %d, want 3", len(res.Items), res.Unprocessed, got)
	}
	for _, it := range res.Items {
		if it.Err != nil && !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("post-cancel item %s failed with %v, want a context.Canceled wrap", it.Key, it.Err)
		}
	}
	// Prompt: an HES fit takes milliseconds, so even one in-flight
	// candidate plus teardown is far under this bound.
	if took := time.Since(began); took > 30*time.Second {
		t.Fatalf("cancelled fleet run took %v", took)
	}
	if n := o.Registry().CounterValue("fleet_runs_canceled_total"); n != 1 {
		t.Fatalf("fleet_runs_canceled_total = %d, want 1", n)
	}
	// No leaked workers: the pool must drain before RunFleet returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d: fleet workers leaked", before, after)
	}
}
