package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

func fakeResult(rmse float64) *Result {
	return &Result{
		SeriesName: "db/cpu",
		TestScore:  metrics.Score{RMSE: rmse},
		Forecast: &Prediction{
			Start: t0, Freq: timeseries.Hourly,
			Mean:  []float64{10, 11, 12},
			Lower: []float64{9, 10, 11},
			Upper: []float64{11, 12, 13},
			Level: 0.95,
		},
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key should not be usable")
	}
	s.Put("db/cpu", fakeResult(5))
	m, ok := s.Get("db/cpu")
	if !ok || m.SelectionRMSE != 5 {
		t.Fatalf("get = %+v, %v", m, ok)
	}
}

func TestStoreWeeklyStaleness(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	now := t0
	s.SetClock(func() time.Time { return now })
	s.Put("db/cpu", fakeResult(5))
	// Six days later: still usable.
	now = t0.Add(6 * 24 * time.Hour)
	if _, ok := s.Get("db/cpu"); !ok {
		t.Fatal("model should be valid within a week")
	}
	// Eight days later: stale — the paper's one-week rule.
	now = t0.Add(8 * 24 * time.Hour)
	if _, ok := s.Get("db/cpu"); ok {
		t.Fatal("model should be stale after a week")
	}
}

func TestStoreCustomMaxAge(t *testing.T) {
	s := NewModelStore(StalePolicy{MaxAge: time.Hour})
	now := t0
	s.SetClock(func() time.Time { return now })
	s.Put("k", fakeResult(1))
	now = t0.Add(2 * time.Hour)
	if _, ok := s.Get("k"); ok {
		t.Fatal("custom MaxAge ignored")
	}
}

func TestStoreRMSEDegradation(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	s.Put("db/cpu", fakeResult(5))
	// Live RMSE within 2×: fine.
	usable, err := s.CheckIn("db/cpu", 8)
	if err != nil || !usable {
		t.Fatalf("usable=%v err=%v", usable, err)
	}
	// Degraded beyond 2×: invalidated, permanently.
	usable, err = s.CheckIn("db/cpu", 11)
	if err != nil || usable {
		t.Fatalf("degraded model still usable (err=%v)", err)
	}
	if _, ok := s.Get("db/cpu"); ok {
		t.Fatal("invalidated model served")
	}
	// Even a good check-in cannot resurrect it.
	usable, _ = s.CheckIn("db/cpu", 1)
	if usable {
		t.Fatal("invalidated model resurrected")
	}
}

func TestStoreCheckInSeries(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	s.Put("db/cpu", fakeResult(1.0))
	// Actuals equal to the forecast: perfect, stays usable.
	usable, err := s.CheckInSeries("db/cpu", []float64{10, 11, 12})
	if err != nil || !usable {
		t.Fatalf("usable=%v err=%v", usable, err)
	}
	// Wildly wrong actuals: degraded.
	usable, err = s.CheckInSeries("db/cpu", []float64{100, 100, 100})
	if err != nil || usable {
		t.Fatal("bad actuals should invalidate")
	}
}

func TestStoreCheckInErrors(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	if _, err := s.CheckIn("nope", 1); err == nil {
		t.Fatal("missing key should error")
	}
	if _, err := s.CheckInSeries("nope", []float64{1}); err == nil {
		t.Fatal("missing key should error")
	}
	s.Put("k", fakeResult(1))
	if _, err := s.CheckInSeries("k", nil); err == nil {
		t.Fatal("empty actuals should error")
	}
}

func TestStoreKeysAndDelete(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	s.Put("a", fakeResult(1))
	s.Put("b", fakeResult(2))
	if len(s.Keys()) != 2 {
		t.Fatal("keys wrong")
	}
	s.Delete("a")
	if len(s.Keys()) != 1 {
		t.Fatal("delete failed")
	}
}

func TestStoreInvalidate(t *testing.T) {
	o := obs.New(obs.Config{Metrics: true})
	s := NewModelStore(StalePolicy{})
	s.SetObserver(o)
	s.Put("db/cpu", fakeResult(5))

	if s.Invalidate("ghost", "drift") {
		t.Fatal("unknown key reported invalidated")
	}
	if !s.Invalidate("db/cpu", "drift") {
		t.Fatal("valid model not invalidated")
	}
	if sm, usable := s.Get("db/cpu"); usable || !sm.Invalidated {
		t.Fatalf("after Invalidate: usable=%v invalidated=%v", usable, sm.Invalidated)
	}
	// Idempotent: a second call on an already-invalid model is a no-op.
	if s.Invalidate("db/cpu", "drift") {
		t.Fatal("second Invalidate reported an eviction")
	}
	reg := o.Registry()
	if n := reg.CounterValue("modelstore_invalidations_total"); n != 1 {
		t.Fatalf("modelstore_invalidations_total = %d, want 1", n)
	}
	if n := reg.Counter("modelstore_evictions_total", obs.L("reason", "drift")).Value(); n != 1 {
		t.Fatalf("drift-reason evictions = %d, want 1", n)
	}
	// A refreshed Put clears the flag and becomes usable again.
	s.Put("db/cpu", fakeResult(4))
	if _, usable := s.Get("db/cpu"); !usable {
		t.Fatal("fresh Put after Invalidate should be usable")
	}
}

func TestStoreZeroSelectionRMSENeverDegrades(t *testing.T) {
	s := NewModelStore(StalePolicy{})
	s.Put("k", fakeResult(0))
	usable, err := s.CheckIn("k", math.MaxFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if !usable {
		t.Fatal("zero selection RMSE should disable the degradation check")
	}
}
