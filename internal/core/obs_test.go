package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// TestEngineRunTraceAndMetrics is the PR's acceptance check in test
// form: a traced engine run must produce a span tree covering every
// Figure 4 stage with one fit span per candidate, and the
// models_fitted_total counter must equal the engine's reported
// candidate count.
func TestEngineRunTraceAndMetrics(t *testing.T) {
	o := obs.New(obs.Config{Trace: true, Metrics: true})
	e, err := NewEngine(Options{Technique: TechniqueHES, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(3))
	if err != nil {
		t.Fatal(err)
	}

	spans := o.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(spans))
	}
	root := spans[0]
	if root.Name() != "engine.run" {
		t.Fatalf("root span = %q", root.Name())
	}
	for _, stage := range []string{"fetch", "interpolate", "split", "analyse", "build-candidates", "fit-score", "champion", "forecast"} {
		if root.Find(stage) == nil {
			t.Errorf("span tree missing Figure 4 stage %q:\n%s", stage, root.Tree())
		}
	}
	fits := 0
	for _, c := range root.Find("fit-score").Children() {
		if c.Name() == "fit" {
			fits++
			if _, ok := c.Attr("candidate"); !ok {
				t.Error("fit span missing candidate attr")
			}
			if _, ok := c.Attr("family"); !ok {
				t.Error("fit span missing family attr")
			}
		}
	}
	if fits != res.ModelsEvaluated {
		t.Errorf("fit spans = %d, want one per candidate (%d)", fits, res.ModelsEvaluated)
	}
	if got := o.Registry().CounterValue("models_fitted_total"); got != int64(res.ModelsEvaluated) {
		t.Errorf("models_fitted_total = %d, want %d", got, res.ModelsEvaluated)
	}
	if got := o.Registry().CounterValue("champion_family_total"); got != 1 {
		t.Errorf("champion_family_total = %d, want 1", got)
	}
	if got := o.Registry().Histogram("fit_duration_seconds", obs.L("technique", "HES")).Count(); got != int64(res.ModelsEvaluated) {
		t.Errorf("fit_duration_seconds count = %d, want %d", got, res.ModelsEvaluated)
	}
}

// TestEngineStageErrorsNamed checks stage failures carry their stage
// name (the fleet-attribution satellite).
func TestEngineStageErrorsNamed(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A half-missing series → interpolate refuses (too sparse).
	values := make([]float64, 1008)
	for i := range values {
		if i%2 == 0 {
			values[i] = math.NaN()
		} else {
			values[i] = 50
		}
	}
	ser := timeseries.New("holes", t0, timeseries.Hourly, values)
	_, err = e.Run(context.Background(), ser)
	if err == nil || !strings.HasPrefix(err.Error(), "interpolate:") {
		t.Errorf("sparse-series error not stage-wrapped: %v", err)
	}
}

// TestFleetRecordsElapsedAndFirstErr checks the fleet satellite: failed
// workloads are attributable (FirstErr + per-item wall time).
func TestFleetRecordsElapsedAndFirstErr(t *testing.T) {
	repo, from, to := fillRepo(t, 1008)
	// A hopeless workload: two samples only → split fails.
	repo.Put(metricstore.Sample{Target: "aaBroken", Metric: "cpu", At: from, Value: 1})
	repo.Put(metricstore.Sample{Target: "aaBroken", Metric: "cpu", At: from.Add(time.Hour), Value: 2})

	o := obs.New(obs.Config{Metrics: true})
	res, err := RunFleet(context.Background(), repo, from, to, FleetOptions{
		Engine: Options{Technique: TechniqueHES},
		Freq:   timeseries.Hourly,
		Obs:    o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Trained != 3 {
		t.Fatalf("outcome = trained %d / failed %d, want 3/1", res.Trained, res.Failed)
	}
	if res.FirstErr == nil || res.FirstErrKey != "aaBroken/cpu" {
		t.Fatalf("FirstErr = %v (key %q), want the broken workload", res.FirstErr, res.FirstErrKey)
	}
	for _, it := range res.Items {
		if it.Skipped {
			continue
		}
		if it.Elapsed <= 0 {
			t.Errorf("workload %s has no recorded wall time", it.Key)
		}
	}
	if got := o.Registry().CounterValue("fleet_workloads_run_total"); got != 3 {
		t.Errorf("fleet_workloads_run_total = %d, want 3", got)
	}
	if got := o.Registry().CounterValue("fleet_workloads_failed_total"); got != 1 {
		t.Errorf("fleet_workloads_failed_total = %d, want 1", got)
	}
}

// TestModelStoreWatchdogCounters checks the staleness watchdog reports
// through the observer.
func TestModelStoreWatchdogCounters(t *testing.T) {
	o := obs.New(obs.Config{Metrics: true})
	store := NewModelStore(StalePolicy{MaxAge: time.Hour, DegradeFactor: 1.5})
	store.SetObserver(o)
	now := t0
	store.SetClock(func() time.Time { return now })

	if _, usable := store.Get("k"); usable {
		t.Fatal("empty store returned usable")
	}
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(4))
	if err != nil {
		t.Fatal(err)
	}
	store.Put("k", res)
	if _, usable := store.Get("k"); !usable {
		t.Fatal("fresh model unusable")
	}
	now = now.Add(2 * time.Hour)
	if _, usable := store.Get("k"); usable {
		t.Fatal("aged model still usable")
	}
	// Degradation invalidates.
	store.Put("k", res)
	if _, err := store.CheckIn("k", res.TestScore.RMSE*10); err != nil {
		t.Fatal(err)
	}
	if _, usable := store.Get("k"); usable {
		t.Fatal("degraded model still usable")
	}

	reg := o.Registry()
	if got := reg.Counter("modelstore_lookups_total", obs.L("result", "miss")).Value(); got != 1 {
		t.Errorf("miss lookups = %d, want 1", got)
	}
	if got := reg.Counter("modelstore_lookups_total", obs.L("result", "hit")).Value(); got != 1 {
		t.Errorf("hit lookups = %d, want 1", got)
	}
	if got := reg.Counter("modelstore_lookups_total", obs.L("result", "stale")).Value(); got != 1 {
		t.Errorf("stale lookups = %d, want 1", got)
	}
	if got := reg.Counter("modelstore_lookups_total", obs.L("result", "invalidated")).Value(); got != 1 {
		t.Errorf("invalidated lookups = %d, want 1", got)
	}
	if got := reg.CounterValue("modelstore_invalidations_total"); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	if got := reg.CounterValue("modelstore_puts_total"); got != 2 {
		t.Errorf("puts = %d, want 2", got)
	}
}

// TestEngineNilObserver checks the engine is fully nil-safe — the
// library default must stay silent and work.
func TestEngineNilObserver(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), seasonalTrending(5)); err != nil {
		t.Fatal(err)
	}
}
