package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/workload"
)

var t0 = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

func hourly(vals []float64) *timeseries.Series {
	return timeseries.New("test", t0, timeseries.Hourly, vals)
}

func TestAnalyzeSeasonalSeries(t *testing.T) {
	y := workload.DailySeasonal(720, 50, 10, 0, 0.5, 1)
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Period != 24 {
		t.Fatalf("period = %d, want 24", an.Period)
	}
	if an.SeasonalStrength < 0.8 {
		t.Fatalf("seasonal strength = %v", an.SeasonalStrength)
	}
	if an.SeasonalD != 1 {
		t.Fatalf("seasonal differencing = %d, want 1", an.SeasonalD)
	}
	if len(an.ACF) == 0 || len(an.PACF) == 0 {
		t.Fatal("correlograms missing")
	}
}

func TestAnalyzeTrendingSeriesNeedsDifferencing(t *testing.T) {
	// Random-walk-with-drift style series: d should be 1.
	y := workload.Synthetic(workload.SyntheticOpts{N: 500, Level: 10, Trend: 0.5, Noise: 1, Seed: 2})
	// Integrate noise to force a unit root.
	acc := 0.0
	for i := range y {
		acc += 0.3 * math.Sin(float64(i))
		y[i] += acc
	}
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.D < 1 {
		t.Fatalf("d = %d, want >= 1 for trending data", an.D)
	}
}

func TestAnalyzeStationarySeries(t *testing.T) {
	y := workload.Synthetic(workload.SyntheticOpts{N: 400, Level: 100, Noise: 2, Seed: 3})
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.D != 0 {
		t.Fatalf("d = %d, want 0 for stationary noise", an.D)
	}
	if !an.Stationary {
		t.Fatal("ADF should report stationary")
	}
	if an.Period != 0 {
		t.Fatalf("period = %d, want none for white noise", an.Period)
	}
}

func TestAnalyzeMultipleSeasonality(t *testing.T) {
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 1008, Level: 100,
		Periods: []int{24, 168}, Amps: []float64{10, 6},
		Noise: 0.5, Seed: 4,
	})
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Period != 24 {
		t.Fatalf("primary period = %d, want 24", an.Period)
	}
	foundWeekly := false
	for _, p := range an.ExtraPeriods {
		if p >= 160 && p <= 176 {
			foundWeekly = true
		}
	}
	if !foundWeekly {
		t.Fatalf("weekly secondary period missing: %v", an.ExtraPeriods)
	}
}

func TestAnalyzeDetectsRecurringShocks(t *testing.T) {
	// Shock at hour 0 of each day for 20 days (well above the ≥4 rule).
	var shockIdx []int
	for d := 0; d < 20; d++ {
		shockIdx = append(shockIdx, d*24)
	}
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 480, Level: 100, Periods: []int{24}, Amps: []float64{5},
		Noise: 0.5, ShockAt: shockIdx, ShockAmp: 50, Seed: 5,
	})
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Shocks) == 0 {
		t.Fatal("no shocks detected")
	}
	found := false
	for _, sh := range an.Shocks {
		if sh.Phase == 0 && sh.Positive && sh.Occurrences >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("midnight shock missing: %+v", an.Shocks)
	}
}

func TestAnalyzeDiscardsRareOutliers(t *testing.T) {
	// Only 2 shocks: below the "more than 3 times" rule → no behaviour.
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 480, Level: 100, Periods: []int{24}, Amps: []float64{5},
		Noise: 0.5, ShockAt: []int{100, 300}, ShockAmp: 60, Seed: 6,
	})
	an, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range an.Shocks {
		if sh.Phase == 100%24 || sh.Phase == 300%24 {
			if sh.Occurrences < 4 {
				t.Fatalf("rare outlier became behaviour: %+v", sh)
			}
		}
	}
	if an.DiscardedOutliers < 2 {
		t.Fatalf("discarded = %d, want >= 2", an.DiscardedOutliers)
	}
}

func TestAnalyzeMinOccurrencesConfigurable(t *testing.T) {
	// 3 occurrences of the same phase: default rejects, threshold 3 accepts.
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 480, Level: 100, Periods: []int{24}, Amps: []float64{5},
		Noise: 0.3, ShockAt: []int{48, 72, 96}, ShockAmp: 60, Seed: 7,
	})
	anDefault, err := Analyze(hourly(y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range anDefault.Shocks {
		if sh.Phase == 0 {
			t.Fatalf("3 occurrences should not qualify by default: %+v", sh)
		}
	}
	anLoose, err := Analyze(hourly(y), AnalyzeOptions{MinShockOccurrences: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sh := range anLoose.Shocks {
		if sh.Phase == 0 && sh.Occurrences == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("threshold 3 should accept the behaviour: %+v", anLoose.Shocks)
	}
}

func TestAnalyzeRejectsGapsAndShort(t *testing.T) {
	y := []float64{1, math.NaN(), 3}
	if _, err := Analyze(hourly(y), AnalyzeOptions{}); err == nil {
		t.Fatal("gappy series should fail")
	}
	if _, err := Analyze(hourly([]float64{1, 2, 3}), AnalyzeOptions{}); err == nil {
		t.Fatal("short series should fail")
	}
}

func TestAnalyzeForcedPeriod(t *testing.T) {
	y := workload.DailySeasonal(480, 50, 10, 0, 0.5, 8)
	an, err := Analyze(hourly(y), AnalyzeOptions{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if an.Period != 24 {
		t.Fatalf("forced period lost: %d", an.Period)
	}
}
