package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/arima"
	"repro/internal/obs"
)

// TestPrecomputeSharesCandidateInputs checks the run cache materialises
// one artefact per distinct configuration: every exog-free candidate
// with the same (d, D, s) shares a differenced series, and every
// (exog, fourier, K) combination shares one regressor design.
func TestPrecomputeSharesCandidateInputs(t *testing.T) {
	s := seasonalTrending(3)
	e, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := PolicyFor(s.Freq)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := policy.Split(s)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(train, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cands := e.buildCandidates(train, an)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	rc := e.precompute(train.Values, an, cands, e.opt.Obs.StartSpan("test"))
	if len(rc.prediff) == 0 {
		t.Fatal("no prediffed series cached")
	}
	if len(rc.regs) == 0 {
		t.Fatal("no regressor designs cached")
	}
	// Far fewer artefacts than candidates is the point of the cache.
	if len(rc.prediff) >= len(cands) {
		t.Fatalf("prediff entries (%d) not shared across candidates (%d)", len(rc.prediff), len(cands))
	}
	for i := range cands {
		c := &cands[i]
		if c.isETS || c.tbatsCfg != nil {
			continue
		}
		regs, err := rc.regsFor(e, *c, an, train.Len())
		if err != nil {
			t.Fatalf("regsFor(%s): %v", c.Label, err)
		}
		if !regs.Empty() {
			continue
		}
		pd := rc.prediffFor(c.cand.Spec, train.Len())
		if pd == nil {
			t.Fatalf("no prediffed series for exog-free candidate %s", c.Label)
		}
		want := arima.Prediff(train.Values, c.cand.Spec.D, c.cand.Spec.SD, c.cand.Spec.S)
		if len(pd) != len(want) {
			t.Fatalf("%s: prediff length %d, want %d", c.Label, len(pd), len(want))
		}
		for j := range want {
			if pd[j] != want[j] {
				t.Fatalf("%s: prediff[%d] = %v, want %v", c.Label, j, pd[j], want[j])
			}
		}
	}
	// The full-series window must never hit the training-window caches.
	if rc.prediffFor(cands[0].cand.Spec, s.Len()) != nil {
		t.Fatal("prediffFor leaked a training-window series for the full window")
	}
}

// TestEngineRunPooledWorkspacesConcurrent runs whole engines in parallel
// under the race detector: each run's parallel fit workers draw
// workspaces from the run's sync.Pool, so this covers pool reuse both
// within and across runs. Results must be run-order independent.
func TestEngineRunPooledWorkspacesConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine runs are slow; covered by make race")
	}
	s := seasonalTrending(5)
	e, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 6, Obs: obs.New(obs.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	labels := make(chan string, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Run(context.Background(), s)
			if err != nil {
				errs <- err
				return
			}
			labels <- res.Champion.Label
		}()
	}
	wg.Wait()
	close(errs)
	close(labels)
	for err := range errs {
		t.Fatal(err)
	}
	for l := range labels {
		if l != ref.Champion.Label {
			t.Fatalf("champion diverged across concurrent runs: %q vs %q", l, ref.Champion.Label)
		}
	}
}
