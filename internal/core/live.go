package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/arima"
	"repro/internal/ets"
	"repro/internal/tbats"
)

// WarmStart carries a previous run's solution into the next Engine.Run so
// the refit can skip most of the cold-start work: the incumbent champion's
// optimiser vector seeds a perturbed Nelder-Mead simplex, and the prior
// per-candidate scores shrink the grid to the top-K plus a small
// exploration band. A nil WarmStart (the default) runs the exact seed-
// behaviour cold path.
type WarmStart struct {
	// ChampionLabel names the incumbent champion; only the candidate with
	// this label is seeded with Params.
	ChampionLabel string
	// Params is the incumbent's optimiser-space parameter vector (from
	// LiveModel.Params). Unusable vectors fall back to the cold simplex.
	Params []float64
	// PriorScores maps candidate labels to their previous hold-out RMSE.
	// When non-empty, only the top-K scorers (plus the incumbent and an
	// exploration band of previously unscored candidates) are evaluated.
	PriorScores map[string]float64
	// TopK bounds the previously scored candidates kept (0 → 4).
	TopK int
	// Explore bounds the previously unscored candidates kept for
	// exploration (0 → 2; negative → none).
	Explore int
}

// WarmFromResult builds the warm-start options a stored result supports:
// incumbent parameters when its live model survived, prior scores from its
// scored candidates. It returns nil when the result carries nothing to
// warm-start from (callers then run cold).
func WarmFromResult(r *Result) *WarmStart {
	if r == nil {
		return nil
	}
	w := &WarmStart{ChampionLabel: r.Champion.Label}
	if r.Live != nil {
		w.Params = r.Live.Params()
	}
	for _, c := range r.Candidates {
		if c.Err != nil || math.IsNaN(c.Score.RMSE) {
			continue
		}
		if w.PriorScores == nil {
			w.PriorScores = make(map[string]float64, len(r.Candidates))
		}
		w.PriorScores[c.Label] = c.Score.RMSE
	}
	if w.Params == nil && w.PriorScores == nil {
		return nil
	}
	return w
}

// shrinkCandidates keeps the top-K candidates by prior score, the
// incumbent champion, and the first Explore candidates the previous run
// never scored (so newly enumerated shapes still get a look). Original
// order is preserved. With no prior scores the grid passes through
// untouched.
func shrinkCandidates(cands []CandidateResult, w *WarmStart) (kept []CandidateResult, skipped int) {
	if w == nil || len(w.PriorScores) == 0 {
		return cands, 0
	}
	topK := w.TopK
	if topK <= 0 {
		topK = 4
	}
	explore := w.Explore
	if explore == 0 {
		explore = 2
	} else if explore < 0 {
		explore = 0
	}
	type scored struct {
		idx   int
		score float64
	}
	var sc []scored
	var unscored []int
	for i := range cands {
		if s, ok := w.PriorScores[cands[i].Label]; ok {
			sc = append(sc, scored{i, s})
		} else {
			unscored = append(unscored, i)
		}
	}
	if len(sc) == 0 {
		return cands, 0
	}
	sort.SliceStable(sc, func(a, b int) bool { return sc[a].score < sc[b].score })
	keep := make(map[int]bool, topK+explore+1)
	for i := 0; i < len(sc) && i < topK; i++ {
		keep[sc[i].idx] = true
	}
	for i := range cands {
		if cands[i].Label == w.ChampionLabel {
			keep[i] = true
		}
	}
	for i := 0; i < len(unscored) && i < explore; i++ {
		keep[unscored[i]] = true
	}
	kept = make([]CandidateResult, 0, len(keep))
	for i := range cands {
		if keep[i] {
			kept = append(kept, cands[i])
		}
	}
	return kept, len(cands) - len(kept)
}

// LiveModel is the champion refitted on the full series, retained with its
// regressor design so the serve loop can fold newly observed points into
// the filter state in place (Advance) and regenerate forecasts from the
// new origin (Forecast) without touching an optimiser.
type LiveModel struct {
	mu     sync.Mutex
	family string
	level  float64
	// n is the absolute series length the state currently reflects; the
	// regressor design is indexed by it, so shock phases and Fourier
	// angles stay aligned as the series grows.
	n    int
	regs *Regressors

	arima *arima.Model
	ets   *ets.Model
	tbats *tbats.Model
}

// Family names the live model's family ("SARIMAX", "HES", "ARIMA",
// "TBATS").
func (lm *LiveModel) Family() string { return lm.family }

// Len reports the absolute series length the state currently reflects.
func (lm *LiveModel) Len() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.n
}

// Params returns the champion's optimiser-space parameter vector, the
// warm-start seed for the next refit (nil when the family has none).
func (lm *LiveModel) Params() []float64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	switch {
	case lm.arima != nil:
		return lm.arima.OptVector()
	case lm.ets != nil:
		return lm.ets.OptVector()
	case lm.tbats != nil:
		return lm.tbats.OptVector()
	}
	return nil
}

// Advance folds newly observed points into the model state in place.
// Exogenous regressor rows for the new observations are regenerated from
// the stored design (deterministic in the absolute index), so shock and
// Fourier columns stay consistent with fit time.
func (lm *LiveModel) Advance(points []float64) error {
	if len(points) == 0 {
		return fmt.Errorf("core: advance needs at least one point")
	}
	for i, v := range points {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: advance point %d is not finite", i)
		}
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	switch {
	case lm.arima != nil:
		var rows [][]float64
		if lm.regs != nil && !lm.regs.Empty() {
			rows = lm.regs.Future(lm.n, len(points))
		}
		if err := lm.arima.Advance(points, rows); err != nil {
			return err
		}
	case lm.ets != nil:
		if err := lm.ets.Advance(points); err != nil {
			return err
		}
	case lm.tbats != nil:
		if err := lm.tbats.Advance(points); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: live model has no fitted family model")
	}
	lm.n += len(points)
	return nil
}

// Forecast regenerates an h-step forecast from the current state.
func (lm *LiveModel) Forecast(h int) (mean, se, lower, upper []float64, err error) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	switch {
	case lm.arima != nil:
		var future [][]float64
		if lm.regs != nil && !lm.regs.Empty() {
			future = lm.regs.Future(lm.n, h)
		}
		fc, ferr := lm.arima.Forecast(h, future, lm.level)
		if ferr != nil {
			return nil, nil, nil, nil, ferr
		}
		return fc.Mean, fc.SE, fc.Lower, fc.Upper, nil
	case lm.ets != nil:
		fc, ferr := lm.ets.Forecast(h, lm.level)
		if ferr != nil {
			return nil, nil, nil, nil, ferr
		}
		return fc.Mean, fc.SE, fc.Lower, fc.Upper, nil
	case lm.tbats != nil:
		fc, ferr := lm.tbats.Forecast(h, lm.level)
		if ferr != nil {
			return nil, nil, nil, nil, ferr
		}
		return fc.Mean, fc.SE, fc.Lower, fc.Upper, nil
	}
	return nil, nil, nil, nil, fmt.Errorf("core: live model has no fitted family model")
}

// Advanced folds points into the live champion's state and regenerates the
// production forecast from the new origin: the returned result is a
// shallow copy of r whose Forecast starts len(points) steps later. The
// receiver's Live model is advanced in place (the copy shares it), so on
// error the caller should fall back to a real refit. No optimiser runs —
// this is the O(1)-per-point horizon-exhaustion path.
func (r *Result) Advanced(points []float64) (*Result, error) {
	if r.Live == nil {
		return nil, fmt.Errorf("core: result has no live champion model")
	}
	if r.Forecast == nil || len(r.Forecast.Mean) == 0 {
		return nil, fmt.Errorf("core: result has no forecast to roll forward")
	}
	if err := r.Live.Advance(points); err != nil {
		return nil, err
	}
	h := len(r.Forecast.Mean)
	mean, se, lower, upper, err := r.Live.Forecast(h)
	if err != nil {
		return nil, err
	}
	r2 := *r
	r2.Forecast = &Prediction{
		Start: r.Forecast.Start.Add(time.Duration(len(points)) * r.Forecast.Freq.Step()),
		Freq:  r.Forecast.Freq,
		Mean:  mean, SE: se, Lower: lower, Upper: upper,
		Level: r.Forecast.Level,
	}
	return &r2, nil
}
