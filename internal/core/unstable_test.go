package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/timeseries"
	"repro/internal/workload"
)

// TestUnstableSystemFlagged verifies the §9 in-fault heuristic: a system
// with frequent crashes at *random* times (non-recurring outliers) is
// flagged unstable, while a clean one is not.
func TestUnstableSystemFlagged(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	// 5% of observations are crash artefacts at random phases.
	var crashes []int
	for i := 0; i < 50; i++ {
		crashes = append(crashes, rng.Intn(1000))
	}
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 1000, Level: 100, Periods: []int{24}, Amps: []float64{10},
		Noise: 0.5, ShockAt: crashes, ShockAmp: -70, Seed: 202,
	})
	an, err := Analyze(timeseries.New("faulty", t0, timeseries.Hourly, y), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Unstable {
		t.Fatalf("faulty system not flagged: discarded=%d", an.DiscardedOutliers)
	}

	clean := workload.DailySeasonal(1000, 100, 10, 0, 0.5, 203)
	anClean, err := Analyze(timeseries.New("clean", t0, timeseries.Hourly, clean), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if anClean.Unstable {
		t.Fatalf("clean system flagged unstable: discarded=%d", anClean.DiscardedOutliers)
	}
}

// TestUnstableWarningInReport checks the warning propagates to the
// operator-facing report.
func TestUnstableWarningInReport(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	var crashes []int
	for i := 0; i < 60; i++ {
		crashes = append(crashes, rng.Intn(1008))
	}
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 1008, Level: 100, Periods: []int{24}, Amps: []float64{10},
		Noise: 0.5, ShockAt: crashes, ShockAmp: -60, Seed: 205,
	})
	e, err := NewEngine(Options{Technique: TechniqueHES})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), timeseries.New("faulty", t0, timeseries.Hourly, y))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.Unstable {
		t.Skip("instability not detected on this seed (crashes may have clustered into behaviours)")
	}
	if !strings.Contains(res.Report(), "in-fault") {
		t.Fatal("report missing the in-fault warning")
	}
}
