package core

import (
	"testing"

	"repro/internal/timeseries"
)

// TestTable1MatchesPaper pins the paper's Table 1 verbatim.
func TestTable1MatchesPaper(t *testing.T) {
	want := []struct {
		freq             timeseries.Frequency
		obs, train, test int
		horizon          int
	}{
		{timeseries.Hourly, 1008, 984, 24, 24},
		{timeseries.Daily, 90, 83, 7, 7},
		{timeseries.Weekly, 92, 88, 4, 4},
	}
	for _, w := range want {
		p, err := PolicyFor(w.freq)
		if err != nil {
			t.Fatal(err)
		}
		if p.Obs != w.obs || p.Train != w.train || p.Test != w.test || p.Horizon != w.horizon {
			t.Fatalf("%v policy = %+v, want %+v", w.freq, p, w)
		}
		if p.Train+p.Test != p.Obs {
			t.Fatalf("%v: train+test != obs", w.freq)
		}
	}
}

func TestPolicyForUnsupported(t *testing.T) {
	if _, err := PolicyFor(timeseries.Minute15); err == nil {
		t.Fatal("15-minute series have no modelling policy (aggregate first)")
	}
}

func TestSplitExactLength(t *testing.T) {
	s := timeseries.New("x", t0, timeseries.Hourly, make([]float64, 1008))
	p, _ := PolicyFor(timeseries.Hourly)
	train, test, err := p.Split(s)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 984 || test.Len() != 24 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
}

func TestSplitLongerSeriesUsesRecentWindow(t *testing.T) {
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := timeseries.New("x", t0, timeseries.Hourly, vals)
	p, _ := PolicyFor(timeseries.Hourly)
	train, test, err := p.Split(s)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != 1008 {
		t.Fatalf("window = %d, want 1008", train.Len()+test.Len())
	}
	// The window must be the most recent data.
	if test.Values[test.Len()-1] != 1999 {
		t.Fatalf("last test value = %v, want 1999", test.Values[test.Len()-1])
	}
}

func TestSplitShorterSeriesKeepsRatio(t *testing.T) {
	s := timeseries.New("x", t0, timeseries.Hourly, make([]float64, 504)) // half the policy
	p, _ := PolicyFor(timeseries.Hourly)
	train, test, err := p.Split(s)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio preserved: 504 × 24/1008 = 12 test points.
	if test.Len() != 12 {
		t.Fatalf("test = %d, want 12", test.Len())
	}
	if train.Len() != 492 {
		t.Fatalf("train = %d, want 492", train.Len())
	}
}

func TestSplitTooShort(t *testing.T) {
	s := timeseries.New("x", t0, timeseries.Hourly, make([]float64, 30))
	p, _ := PolicyFor(timeseries.Hourly)
	if _, _, err := p.Split(s); err == nil {
		t.Fatal("30 observations should be rejected for hourly modelling")
	}
}
