package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func TestShrinkCandidates(t *testing.T) {
	cands := []CandidateResult{
		{Label: "a"}, {Label: "b"}, {Label: "c"}, {Label: "d"}, {Label: "e"}, {Label: "f"},
	}
	w := &WarmStart{
		ChampionLabel: "d",
		PriorScores:   map[string]float64{"a": 3, "b": 1, "c": 2, "d": 5},
		TopK:          2, Explore: 1,
	}
	kept, skipped := shrinkCandidates(cands, w)
	var labels []string
	for _, c := range kept {
		labels = append(labels, c.Label)
	}
	// Top-2 by score: b (1), c (2); incumbent d; first unscored e.
	want := []string{"b", "c", "d", "e"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("kept = %v, want %v", labels, want)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}

	// No prior scores → passthrough.
	kept, skipped = shrinkCandidates(cands, &WarmStart{ChampionLabel: "a"})
	if len(kept) != len(cands) || skipped != 0 {
		t.Fatalf("no-scores shrink = %d kept, %d skipped", len(kept), skipped)
	}
	// Scores that match nothing → passthrough.
	kept, skipped = shrinkCandidates(cands, &WarmStart{PriorScores: map[string]float64{"zz": 1}})
	if len(kept) != len(cands) || skipped != 0 {
		t.Fatalf("unmatched-scores shrink = %d kept, %d skipped", len(kept), skipped)
	}
}

func TestWarmFromResult(t *testing.T) {
	if WarmFromResult(nil) != nil {
		t.Fatal("nil result should have no warm start")
	}
	r := &Result{Champion: CandidateResult{Label: "x"}}
	if WarmFromResult(r) != nil {
		t.Fatal("result with no live model and no scored candidates should have no warm start")
	}
	r.Candidates = []CandidateResult{
		{Label: "x", Score: metrics.Score{RMSE: 1.5}},
		{Label: "bad", Err: context.Canceled},
		{Label: "nan", Score: metrics.Score{RMSE: math.NaN()}},
	}
	w := WarmFromResult(r)
	if w == nil || w.ChampionLabel != "x" {
		t.Fatalf("warm = %+v", w)
	}
	if len(w.PriorScores) != 1 || w.PriorScores["x"] != 1.5 {
		t.Fatalf("prior scores = %v (errored and NaN candidates must be dropped)", w.PriorScores)
	}
}

// TestWarmRunShrinksGrid: a warm Run seeded from a cold run's result must
// evaluate fewer candidates, mark the result WarmStarted, count the
// skipped grid entries, and still produce a finite production forecast.
func TestWarmRunShrinksGrid(t *testing.T) {
	ser := seasonalTrending(7)
	cold, err := mustEngine(t, Options{Technique: TechniqueSARIMAX, MaxCandidates: 8}).Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Fatal("cold run reported WarmStarted")
	}
	if cold.Live == nil {
		t.Fatal("cold run carries no live model")
	}
	if got := cold.Live.Len(); got != ser.Len() {
		t.Fatalf("live model length %d, want %d", got, ser.Len())
	}

	o := obs.New(obs.Config{Metrics: true})
	warmEng := mustEngine(t, Options{
		Technique: TechniqueSARIMAX, MaxCandidates: 8, Obs: o,
		Warm: WarmFromResult(cold),
	})
	warm, err := warmEng.Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm run not marked WarmStarted")
	}
	if warm.ModelsEvaluated >= cold.ModelsEvaluated {
		t.Fatalf("warm evaluated %d models, cold %d — grid did not shrink",
			warm.ModelsEvaluated, cold.ModelsEvaluated)
	}
	if n := o.Registry().CounterValue("refit_grid_skipped_total"); n < 1 {
		t.Fatalf("refit_grid_skipped_total = %d, want >= 1", n)
	}
	if warm.Forecast == nil || len(warm.Forecast.Mean) != len(cold.Forecast.Mean) {
		t.Fatal("warm run forecast missing or truncated")
	}
	for _, v := range warm.Forecast.Mean {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("warm forecast not finite")
		}
	}
	// The shrunken grid still contains the incumbent, so the warm champion
	// can never score worse than a refit of the incumbent alone.
	if warm.TestScore.RMSE > cold.TestScore.RMSE*1.5 {
		t.Fatalf("warm champion RMSE %g far worse than cold %g", warm.TestScore.RMSE, cold.TestScore.RMSE)
	}
}

// TestColdRunByteIdentical: with Warm nil the engine must behave exactly
// as the seed did — two cold runs over the same series produce deeply
// equal champions and forecasts. This is the forced-cold escape hatch's
// correctness contract (-cold-refit-every).
func TestColdRunByteIdentical(t *testing.T) {
	ser := seasonalTrending(11)
	a, err := mustEngine(t, Options{Technique: TechniqueSARIMAX, MaxCandidates: 6, Workers: 2}).Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustEngine(t, Options{Technique: TechniqueSARIMAX, MaxCandidates: 6, Workers: 2}).Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	if a.Champion.Label != b.Champion.Label {
		t.Fatalf("champions differ: %q vs %q", a.Champion.Label, b.Champion.Label)
	}
	if !reflect.DeepEqual(a.Forecast, b.Forecast) {
		t.Fatal("cold runs produced different forecasts")
	}
	if !reflect.DeepEqual(a.TestForecast, b.TestForecast) {
		t.Fatal("cold runs produced different hold-out forecasts")
	}
}

// TestResultAdvanced: rolling a result forward shifts the forecast origin
// by the advanced points and keeps the horizon length; the live model's
// absolute length grows.
func TestResultAdvanced(t *testing.T) {
	ser := seasonalTrending(3)
	res, err := mustEngine(t, Options{Technique: TechniqueHES, MaxCandidates: 4}).Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil || res.Forecast == nil {
		t.Fatal("run carries no live model or forecast")
	}
	h := len(res.Forecast.Mean)
	next := make([]float64, 6)
	for i := range next {
		next[i] = res.Forecast.Mean[i] // feed the forecast back as actuals
	}
	r2, err := res.Advanced(next)
	if err != nil {
		t.Fatal(err)
	}
	wantStart := res.Forecast.Start.Add(6 * res.Forecast.Freq.Step())
	if !r2.Forecast.Start.Equal(wantStart) {
		t.Fatalf("advanced forecast starts %v, want %v", r2.Forecast.Start, wantStart)
	}
	if len(r2.Forecast.Mean) != h {
		t.Fatalf("advanced forecast horizon %d, want %d", len(r2.Forecast.Mean), h)
	}
	for _, v := range r2.Forecast.Mean {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("advanced forecast not finite")
		}
	}
	if got := r2.Live.Len(); got != ser.Len()+6 {
		t.Fatalf("live length %d, want %d", got, ser.Len()+6)
	}
	// The champion bookkeeping rides along untouched.
	if r2.Champion.Label != res.Champion.Label {
		t.Fatal("advance changed the champion")
	}

	// Error paths: no live model / no forecast.
	bare := &Result{Forecast: res.Forecast}
	if _, err := bare.Advanced(next); err == nil {
		t.Error("advance without a live model accepted")
	}
	noFC := &Result{Live: res.Live}
	if _, err := noFC.Advanced(next); err == nil {
		t.Error("advance without a forecast accepted")
	}
}

func mustEngine(t *testing.T, opt Options) *Engine {
	t.Helper()
	e, err := NewEngine(opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
