package core

import (
	"fmt"
	"strings"
)

// Report renders the engine result as a human-readable text block — the
// narrative the paper's §9 wants surfaced to administrators instead of a
// raw chart: what the data looks like, which model won and why, and how
// much to trust the forecast.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Capacity forecast — %s\n", r.SeriesName)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("=", 20+len(r.SeriesName)))

	fmt.Fprintf(&sb, "technique      : %v branch of the selection flow\n", r.Technique)
	fmt.Fprintf(&sb, "data           : %d train + %d test observations\n", r.TrainLen, r.TestLen)

	an := r.Analysis
	if an != nil {
		fmt.Fprintf(&sb, "stationarity   : ")
		if an.Stationary {
			fmt.Fprintf(&sb, "stationary (ADF %.2f, p=%.3f), d=%d\n", an.ADFStat, an.ADFPValue, an.D)
		} else {
			fmt.Fprintf(&sb, "trending/unit root (ADF %.2f, p=%.3f) → differenced d=%d\n", an.ADFStat, an.ADFPValue, an.D)
		}
		if an.Period > 0 {
			fmt.Fprintf(&sb, "seasonality    : period %d, strength %.2f, D=%d\n", an.Period, an.SeasonalStrength, an.SeasonalD)
		} else {
			fmt.Fprintf(&sb, "seasonality    : none detected\n")
		}
		if len(an.ExtraPeriods) > 0 {
			fmt.Fprintf(&sb, "multi-seasonal : extra periods %v → Fourier terms offered\n", an.ExtraPeriods)
		}
		if len(an.Shocks) > 0 {
			fmt.Fprintf(&sb, "shocks         : %d recurring behaviour(s):", len(an.Shocks))
			for _, sh := range an.Shocks {
				dir := "+"
				if !sh.Positive {
					dir = "-"
				}
				fmt.Fprintf(&sb, " phase %d (%s×%d)", sh.Phase, dir, sh.Occurrences)
			}
			sb.WriteString("\n")
		}
		if an.DiscardedOutliers > 0 {
			fmt.Fprintf(&sb, "outliers       : %d rare event(s) discarded (below the >3-occurrences rule)\n", an.DiscardedOutliers)
		}
		if an.Unstable {
			sb.WriteString("⚠ stability    : system appears in-fault (frequent non-recurring outliers); forecast reliability reduced — consider the manual override\n")
		}
	}

	fmt.Fprintf(&sb, "champion       : %s\n", r.Champion.Label)
	fmt.Fprintf(&sb, "accuracy       : RMSE %.4f | MAPE %.2f%% | MAPA %.2f%%\n",
		r.TestScore.RMSE, r.TestScore.MAPE, r.TestScore.MAPA)
	fmt.Fprintf(&sb, "evaluation     : %d models in %v\n", r.ModelsEvaluated, r.Elapsed.Round(1e6))

	// Runner-up context: how decisive was the win?
	var runnerUp *CandidateResult
	for i := 1; i < len(r.Candidates); i++ {
		if r.Candidates[i].Err == nil {
			runnerUp = &r.Candidates[i]
			break
		}
	}
	if runnerUp != nil && r.TestScore.RMSE > 0 {
		margin := (runnerUp.Score.RMSE - r.TestScore.RMSE) / r.TestScore.RMSE * 100
		fmt.Fprintf(&sb, "runner-up      : %s (RMSE +%.1f%%)\n", runnerUp.Label, margin)
	}

	if r.Diagnostics != nil {
		if r.Diagnostics.Clean {
			fmt.Fprintf(&sb, "diagnostics    : clean (Ljung-Box p=%.3f, Jarque-Bera p=%.3f)\n",
				r.Diagnostics.LjungBox.PValue, r.Diagnostics.JarqueBera.PValue)
		} else {
			fmt.Fprintf(&sb, "diagnostics    : residual structure remains (Ljung-Box p=%.3f, Jarque-Bera p=%.3f)\n",
				r.Diagnostics.LjungBox.PValue, r.Diagnostics.JarqueBera.PValue)
		}
	}

	if r.Forecast != nil && len(r.Forecast.Mean) > 0 {
		fc := r.Forecast
		last := len(fc.Mean) - 1
		fmt.Fprintf(&sb, "forecast       : %d steps from %s at %.0f%% interval\n",
			len(fc.Mean), fc.TimeAt(0).Format("2006-01-02 15:04"), fc.Level*100)
		fmt.Fprintf(&sb, "  first step   : %.4g  [%.4g, %.4g]\n", fc.Mean[0], fc.Lower[0], fc.Upper[0])
		fmt.Fprintf(&sb, "  last step    : %.4g  [%.4g, %.4g]\n", fc.Mean[last], fc.Lower[last], fc.Upper[last])
	}
	return sb.String()
}

// String renders a one-line summary of the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %s (RMSE %.4f, %d models, %v)",
		r.SeriesName, r.Champion.Label, r.TestScore.RMSE, r.ModelsEvaluated, r.Elapsed.Round(1e6))
}
