package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// fillRepo loads a repository with hourly samples for several workloads.
func fillRepo(t *testing.T, n int) (*metricstore.Store, time.Time, time.Time) {
	t.Helper()
	repo := metricstore.New()
	from := t0
	to := t0.Add(time.Duration(n) * time.Hour)
	for w := 0; w < 3; w++ {
		y := workload.DailySeasonal(n, 40+float64(w)*10, 8, 0.01, 1, int64(w+1))
		target := []string{"dbA", "dbB", "dbC"}[w]
		for i := 0; i < n; i++ {
			repo.Put(metricstore.Sample{
				Target: target, Metric: "cpu",
				At: from.Add(time.Duration(i) * time.Hour), Value: y[i],
			})
		}
	}
	return repo, from, to
}

func TestRunFleetTrainsEverySeries(t *testing.T) {
	repo, from, to := fillRepo(t, 1008)
	store := NewModelStore(StalePolicy{})
	res, err := RunFleet(context.Background(), repo, from, to, FleetOptions{
		Engine: Options{Technique: TechniqueHES},
		Freq:   timeseries.Hourly,
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trained != 3 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("outcome = %d/%d/%d", res.Trained, res.Skipped, res.Failed)
	}
	if res.Canceled || res.Unprocessed != 0 {
		t.Fatalf("uncancelled run reports Canceled=%v Unprocessed=%d", res.Canceled, res.Unprocessed)
	}
	if len(store.Keys()) != 3 {
		t.Fatalf("store holds %d champions", len(store.Keys()))
	}
	// Items sorted by key.
	if res.Items[0].Key != "dbA/cpu" || res.Items[2].Key != "dbC/cpu" {
		t.Fatalf("items unsorted: %v %v", res.Items[0].Key, res.Items[2].Key)
	}
	for _, it := range res.Items {
		if it.Result == nil || it.Result.TestScore.MAPA < 80 {
			t.Fatalf("item %s has poor champion", it.Key)
		}
	}
}

func TestRunFleetSkipFresh(t *testing.T) {
	repo, from, to := fillRepo(t, 1008)
	store := NewModelStore(StalePolicy{})
	opt := FleetOptions{
		Engine:    Options{Technique: TechniqueHES},
		Freq:      timeseries.Hourly,
		Store:     store,
		SkipFresh: true,
	}
	// First run trains everything.
	res1, err := RunFleet(context.Background(), repo, from, to, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Trained != 3 {
		t.Fatalf("first run trained %d", res1.Trained)
	}
	// Second run skips everything (champions are fresh).
	res2, err := RunFleet(context.Background(), repo, from, to, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Skipped != 3 || res2.Trained != 0 {
		t.Fatalf("second run = %d trained / %d skipped", res2.Trained, res2.Skipped)
	}
	// Degrade one champion: only that one re-trains.
	if _, err := store.CheckIn("dbB/cpu", 1e12); err != nil {
		t.Fatal(err)
	}
	res3, err := RunFleet(context.Background(), repo, from, to, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trained != 1 || res3.Skipped != 2 {
		t.Fatalf("third run = %d trained / %d skipped", res3.Trained, res3.Skipped)
	}
}

func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(context.Background(), nil, t0, t0.Add(time.Hour), FleetOptions{}); err == nil {
		t.Fatal("nil repo should fail")
	}
	repo := metricstore.New()
	if _, err := RunFleet(context.Background(), repo, t0, t0.Add(time.Hour), FleetOptions{Freq: timeseries.Hourly}); err == nil {
		t.Fatal("empty repo should fail")
	}
	repo.Put(metricstore.Sample{Target: "d", Metric: "m", At: t0, Value: 1})
	if _, err := RunFleet(context.Background(), repo, t0, t0.Add(time.Hour), FleetOptions{SkipFresh: true, Freq: timeseries.Hourly}); err == nil {
		t.Fatal("SkipFresh without store should fail")
	}
}

func TestRunFleetPartialFailure(t *testing.T) {
	repo, from, to := fillRepo(t, 1008)
	// Add a too-short series that will fail the engine.
	repo.Put(metricstore.Sample{Target: "tiny", Metric: "cpu", At: from, Value: 1})
	res, err := RunFleet(context.Background(), repo, from, to, FleetOptions{
		Engine: Options{Technique: TechniqueHES},
		Freq:   timeseries.Hourly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Trained != 3 {
		t.Fatalf("outcome = %d trained / %d failed", res.Trained, res.Failed)
	}
}
