package core

import (
	"sync"

	"repro/internal/arima"
	"repro/internal/obs"
)

// This file implements the per-run candidate precomputation. One engine
// run fits dozens of candidates over the same training window, and most
// of their setup work is identical: every (d, D, s) pair differences the
// same series, every "+exog" candidate rebuilds the same shock pulses,
// and every Fourier variant regenerates the same trigonometric columns.
// The runCache computes each distinct artefact once — serially, before
// the worker pool starts, so the maps are read-only during the parallel
// fit stage and need no locking — and hands fit workspaces to workers
// from a sync.Pool so steady-state candidate fits allocate nothing.

// diffKey identifies one differencing configuration (1−B)ᵈ(1−Bˢ)ᴰ.
type diffKey struct{ d, sd, s int }

// regKey identifies one exogenous design over the training window.
type regKey struct {
	exog     bool
	fourier  bool
	fourierK int
}

func regKeyFor(c *CandidateResult) regKey {
	return regKey{exog: c.cand.UseExog, fourier: c.cand.UseFourier, fourierK: c.fourierK}
}

// runCache is the shared, read-only state of one engine run's fit stage.
type runCache struct {
	// n is the training length the prediff / regs maps were built for;
	// lookups at any other length (the full-series refit) fall through to
	// direct computation.
	n       int
	prediff map[diffKey][]float64
	regs    map[regKey]*Regressors
	// pool hands out fit workspaces, one per concurrent fitter. Buffers
	// persist across candidates, so after warm-up a fit's objective loop
	// allocates nothing.
	pool sync.Pool
}

// precompute builds the run cache for a candidate list: each distinct
// regressor design and each distinct differenced series is materialised
// exactly once and shared (read-only) by every candidate that needs it.
func (e *Engine) precompute(train []float64, an *Analysis, cands []CandidateResult, sp *obs.Span) *runCache {
	rc := &runCache{
		n:       len(train),
		prediff: map[diffKey][]float64{},
		regs:    map[regKey]*Regressors{},
	}
	rc.pool.New = func() any { return arima.NewWorkspace() }
	for i := range cands {
		c := &cands[i]
		if c.isETS || c.tbatsCfg != nil {
			continue
		}
		rk := regKeyFor(c)
		regs, ok := rc.regs[rk]
		if !ok {
			r, err := e.regressorsFor(*c, an, len(train))
			if err != nil {
				// Leave the entry absent; the worker rebuilds and surfaces
				// the same error as this candidate's fit failure.
				continue
			}
			rc.regs[rk] = r
			regs = r
		}
		// The prediffed series only applies to exog-free fits: with
		// regressors the warm-start series is β-adjusted before
		// differencing, so there is nothing shareable.
		if regs.Empty() {
			dk := diffKey{d: c.cand.Spec.D, sd: c.cand.Spec.SD, s: c.cand.Spec.S}
			if _, seen := rc.prediff[dk]; !seen {
				rc.prediff[dk] = arima.Prediff(train, dk.d, dk.sd, dk.s)
			}
		}
	}
	sp.Set("prediff_series", len(rc.prediff))
	sp.Set("regressor_sets", len(rc.regs))
	return rc
}

// regsFor returns the candidate's exogenous design, cached when the
// window length matches the run cache.
func (rc *runCache) regsFor(e *Engine, c CandidateResult, an *Analysis, n int) (*Regressors, error) {
	if rc != nil && n == rc.n {
		if r, ok := rc.regs[regKeyFor(&c)]; ok {
			return r, nil
		}
	}
	return e.regressorsFor(c, an, n)
}

// prediffFor returns the shared differenced series for a spec, or nil
// when none was precomputed (wrong window length, or an exog candidate).
func (rc *runCache) prediffFor(spec arima.Spec, n int) []float64 {
	if rc == nil || n != rc.n {
		return nil
	}
	return rc.prediff[diffKey{d: spec.D, sd: spec.SD, s: spec.S}]
}

// workspace draws a fit workspace from the pool (never nil).
func (rc *runCache) workspace() *arima.Workspace {
	if rc == nil {
		return arima.NewWorkspace()
	}
	return rc.pool.Get().(*arima.Workspace)
}

// release returns a workspace to the pool.
func (rc *runCache) release(ws *arima.Workspace) {
	if rc != nil {
		rc.pool.Put(ws)
	}
}
