package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/timeseries"
)

// BacktestOptions configures a rolling-origin evaluation.
type BacktestOptions struct {
	// Engine options used for every fold.
	Engine Options
	// Horizon is the per-fold forecast length (0 → the frequency's
	// Table 1 horizon).
	Horizon int
	// Folds is the number of rolling origins (0 → 4).
	Folds int
	// MinTrain is the smallest training window allowed (0 → 10×horizon).
	MinTrain int
}

// FoldResult records one rolling-origin fold.
type FoldResult struct {
	// Origin is the index of the first forecast observation.
	Origin int
	// OriginTime is its timestamp.
	OriginTime time.Time
	// Champion is the model selected inside the fold.
	Champion string
	// Score is the accuracy over the fold's horizon.
	Score metrics.Score
}

// BacktestResult aggregates a rolling-origin evaluation — the §9
// "continually assess the models performance" loop, run retrospectively
// to validate that the pipeline's champions stay accurate as the origin
// advances.
type BacktestResult struct {
	Folds []FoldResult
	// MeanRMSE and WorstRMSE summarise the folds.
	MeanRMSE  float64
	WorstRMSE float64
	// MeanMAPA summarises forecast accuracy in percent.
	MeanMAPA float64
}

// Backtest runs a rolling-origin evaluation of the engine on a series:
// for each fold the engine trains on data up to the origin, forecasts
// the next horizon observations, and is scored against the actuals; the
// origin then advances by one horizon. Cancelling ctx aborts the
// in-flight fold and fails the backtest.
func Backtest(ctx context.Context, s *timeseries.Series, opt BacktestOptions) (*BacktestResult, error) {
	work := s.Clone()
	if work.HasMissing() {
		if _, err := work.Interpolate(); err != nil {
			return nil, err
		}
	}
	horizon := opt.Horizon
	if horizon <= 0 {
		policy, err := PolicyFor(work.Freq)
		if err != nil {
			return nil, err
		}
		horizon = policy.Horizon
	}
	folds := opt.Folds
	if folds <= 0 {
		folds = 4
	}
	minTrain := opt.MinTrain
	if minTrain <= 0 {
		minTrain = 10 * horizon
	}
	n := work.Len()
	firstOrigin := n - folds*horizon
	if firstOrigin < minTrain {
		return nil, fmt.Errorf("core: series too short for %d folds of horizon %d (need >= %d observations, have %d)",
			folds, horizon, minTrain+folds*horizon, n)
	}

	engineOpt := opt.Engine
	engineOpt.Horizon = horizon
	eng, err := NewEngine(engineOpt)
	if err != nil {
		return nil, err
	}

	o := opt.Engine.Obs
	root := o.StartSpan("backtest")
	defer root.End()
	root.Set("series", s.Name)
	root.Set("folds", folds)
	root.Set("horizon", horizon)

	res := &BacktestResult{}
	var sumRMSE, sumMAPA float64
	for f := 0; f < folds; f++ {
		origin := firstOrigin + f*horizon
		trainSer := work.Slice(0, origin)
		actual := work.Values[origin : origin+horizon]

		fsp := root.Child("fold")
		fsp.Set("origin", origin)
		runRes, err := eng.WithParentSpan(fsp).Run(ctx, trainSer)
		if err != nil {
			err = fmt.Errorf("core: backtest fold %d: %w", f, err)
			fsp.Fail(err)
			fsp.End()
			root.Fail(err)
			return nil, err
		}
		fc := runRes.Forecast.Mean
		if len(fc) != horizon {
			return nil, fmt.Errorf("core: backtest fold %d produced %d steps, want %d", f, len(fc), horizon)
		}
		score := metrics.Evaluate(actual, fc)
		fsp.Set("champion", runRes.Champion.Label)
		fsp.Set("rmse", score.RMSE)
		fsp.End()
		o.Debug("backtest fold scored", "series", s.Name, "fold", f,
			"champion", runRes.Champion.Label, "rmse", score.RMSE)
		res.Folds = append(res.Folds, FoldResult{
			Origin:     origin,
			OriginTime: work.TimeAt(origin),
			Champion:   runRes.Champion.Label,
			Score:      score,
		})
		sumRMSE += score.RMSE
		sumMAPA += score.MAPA
		if score.RMSE > res.WorstRMSE {
			res.WorstRMSE = score.RMSE
		}
	}
	res.MeanRMSE = sumRMSE / float64(folds)
	res.MeanMAPA = sumMAPA / float64(folds)
	return res, nil
}
