package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/timeseries"
	"repro/internal/workload"
)

func TestBacktestRollingOrigins(t *testing.T) {
	s := seasonalTrending(11)
	res, err := Backtest(context.Background(), s, BacktestOptions{
		Engine: Options{Technique: TechniqueHES},
		Folds:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 3 {
		t.Fatalf("folds = %d, want 3", len(res.Folds))
	}
	// Origins advance by exactly one horizon (24 for hourly).
	for i := 1; i < len(res.Folds); i++ {
		if res.Folds[i].Origin-res.Folds[i-1].Origin != 24 {
			t.Fatalf("origins not spaced by horizon: %d -> %d",
				res.Folds[i-1].Origin, res.Folds[i].Origin)
		}
	}
	if res.MeanRMSE <= 0 || math.IsNaN(res.MeanRMSE) {
		t.Fatalf("mean RMSE = %v", res.MeanRMSE)
	}
	if res.WorstRMSE < res.MeanRMSE {
		t.Fatal("worst RMSE below mean")
	}
	if res.MeanMAPA <= 50 {
		t.Fatalf("MAPA = %v — the HES forecast should be far better than coin-flip", res.MeanMAPA)
	}
	for _, f := range res.Folds {
		if f.Champion == "" {
			t.Fatal("fold missing champion")
		}
	}
}

func TestBacktestTooShort(t *testing.T) {
	s := timeseries.New("s", t0, timeseries.Hourly, make([]float64, 100))
	if _, err := Backtest(context.Background(), s, BacktestOptions{Engine: Options{Technique: TechniqueHES}, Folds: 5}); err == nil {
		t.Fatal("short series should fail")
	}
}

func TestBacktestRepairsGaps(t *testing.T) {
	s := seasonalTrending(12)
	s.Values[100] = math.NaN()
	if _, err := Backtest(context.Background(), s, BacktestOptions{Engine: Options{Technique: TechniqueHES}, Folds: 2}); err != nil {
		t.Fatalf("backtest should repair gaps: %v", err)
	}
}

func TestBacktestCustomHorizon(t *testing.T) {
	s := seasonalTrending(13)
	res, err := Backtest(context.Background(), s, BacktestOptions{
		Engine:  Options{Technique: TechniqueHES},
		Horizon: 12,
		Folds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds[1].Origin-res.Folds[0].Origin != 12 {
		t.Fatal("custom horizon not used")
	}
}

func TestReportContents(t *testing.T) {
	e, err := NewEngine(Options{Technique: TechniqueSARIMAX, MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), seasonalTrending(14))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{
		"Capacity forecast", "champion", "accuracy", "RMSE",
		"seasonality", "forecast", "984 train + 24 test",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(res.String(), res.Champion.Label) {
		t.Fatal("String() missing champion")
	}
}

func TestEngineTBATSBranch(t *testing.T) {
	// A shorter multi-seasonal series exercises the TBATS branch.
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 504, Level: 100, Periods: []int{24}, Amps: []float64{12},
		Noise: 1, Seed: 15,
	})
	s := timeseries.New("tbats-branch", t0, timeseries.Hourly, y)
	e, err := NewEngine(Options{Technique: TechniqueTBATS})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Champion.Label, "TBATS") {
		t.Fatalf("champion = %q, want a TBATS config", res.Champion.Label)
	}
	if len(res.Forecast.Mean) != 24 {
		t.Fatalf("horizon = %d", len(res.Forecast.Mean))
	}
	// The forecast should track the seasonal truth reasonably.
	if res.TestScore.MAPA < 80 {
		t.Fatalf("TBATS MAPA = %v, want > 80", res.TestScore.MAPA)
	}
	if core := TechniqueTBATS.String(); core != "TBATS" {
		t.Fatalf("String = %q", core)
	}
}
