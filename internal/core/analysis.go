// Package core implements the paper's learning engine (Figure 4 and §5):
// the automated pipeline that takes a monitored metric series and — with
// no time-series expertise from the user — repairs gaps, splits
// train/test per Table 1, characterises the data (stationarity,
// seasonality, multiple seasonality, shocks), enumerates candidate
// models, fits them in parallel, selects the champion by hold-out RMSE,
// and keeps it in a model store until it goes stale (one week) or its
// accuracy degrades.
package core

import (
	"fmt"
	"math"

	"repro/internal/decompose"
	"repro/internal/fourier"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Analysis characterises a series, mirroring the decision diamonds of the
// paper's Figure 4 flow.
type Analysis struct {
	// D is the suggested non-seasonal differencing order from repeated
	// ADF tests (Box-Jenkins).
	D int
	// Stationary reports the ADF verdict on the raw series.
	Stationary bool
	// ADFStat and ADFPValue record the test.
	ADFStat, ADFPValue float64

	// Period is the primary seasonal period (0 when none detected).
	Period int
	// SeasonalStrength is the Hyndman F_s statistic for Period.
	SeasonalStrength float64
	// SeasonalD is the suggested seasonal differencing (1 when strong
	// seasonality is present, else 0).
	SeasonalD int

	// ExtraPeriods lists secondary seasonal periods (multiple
	// seasonality, challenge C3), strongest first.
	ExtraPeriods []int

	// Shocks lists detected recurring shock behaviours (challenge C4).
	Shocks []Shock
	// DiscardedOutliers counts outliers that occurred too rarely to be a
	// behaviour (the paper's "if a system crashes we discard it").
	DiscardedOutliers int
	// Unstable flags a system in fault (§9: "when a system is unstable or
	// in a period of fault … forecasting will not be a true reflection of
	// the system"): non-recurring outliers exceed 2% of the observations.
	// The engine still forecasts, but the report carries the warning and
	// operators should apply the paper's manual override.
	Unstable bool

	// ACF and PACF hold the first 30-lag correlograms (Figure 1a).
	ACF, PACF []float64
	// Band is the white-noise confidence band for the correlograms.
	Band float64
}

// Shock is a recurring load event — backup, batch job — detected at a
// fixed phase of the seasonal cycle.
type Shock struct {
	// Phase is the offset within the primary period (e.g. hour-of-day for
	// hourly data with period 24).
	Phase int
	// Occurrences counts how many cycles exhibited the outlier.
	Occurrences int
	// MeanMagnitude is the average excess over the seasonal baseline.
	MeanMagnitude float64
	// Positive is true for upward shocks (load spikes).
	Positive bool
}

// AnalyzeOptions tunes the analysis.
type AnalyzeOptions struct {
	// Period forces the primary seasonal period; 0 auto-detects from the
	// series frequency and periodogram.
	Period int
	// MinShockOccurrences is the paper's "more than 3 times" rule: an
	// outlier phase must recur at least this often to count as a
	// behaviour. 0 means 4.
	MinShockOccurrences int
	// ShockThreshold is the MAD multiple for outlier detection; 0 = 3.5.
	ShockThreshold float64
	// MaxLag bounds the correlograms; 0 = 30 (the paper's choice).
	MaxLag int
}

// Analyze characterises the series. The series must be gap-free
// (Interpolate first); an error is returned otherwise.
func Analyze(s *timeseries.Series, opt AnalyzeOptions) (*Analysis, error) {
	if s.HasMissing() {
		return nil, fmt.Errorf("core: series %q has gaps; interpolate before analysis", s.Name)
	}
	y := s.Values
	if len(y) < 24 {
		return nil, fmt.Errorf("core: series %q too short to analyse (%d points)", s.Name, len(y))
	}
	minOcc := opt.MinShockOccurrences
	if minOcc <= 0 {
		minOcc = 4
	}
	thresh := opt.ShockThreshold
	if thresh <= 0 {
		thresh = 3.5
	}
	maxLag := opt.MaxLag
	if maxLag <= 0 {
		maxLag = 30
	}
	if maxLag > len(y)/3 {
		maxLag = len(y) / 3
	}

	a := &Analysis{}

	// Stationarity and differencing (Box-Jenkins, Figure 1c).
	adf, err := stats.ADF(y, stats.ADFConstant, -1)
	if err == nil {
		a.Stationary = adf.Stationary
		a.ADFStat = adf.Stat
		a.ADFPValue = adf.PValue
	}
	d, err := stats.SuggestDifferencing(y, stats.ADFConstant)
	if err != nil {
		d = 1
	}
	if d > 1 {
		// Capacity metrics essentially never need d=2; cap per the
		// paper's "usually should not be greater than" guidance.
		d = 1
	}
	a.D = d

	// Seasonality: candidate periods from the periodogram, anchored by
	// the frequency's natural period.
	natural := s.Freq.Period()
	cands := fourier.DetectSeasonality(y, 0.015, 4)
	period := opt.Period
	if period == 0 {
		for _, c := range cands {
			if c.Period >= 2 && len(y) >= 2*c.Period {
				period = c.Period
				break
			}
		}
		// Prefer the natural period when the periodogram lands near it.
		if period != 0 && abs(period-natural) <= 2 && len(y) >= 2*natural {
			period = natural
		}
	}
	// Fall back to the frequency's natural period when the periodogram is
	// inconclusive but the data could hold one.
	if period == 0 && len(y) >= 3*natural {
		period = natural
	}

	// Shock detection runs on the candidate period BEFORE the seasonal
	// strength check: large shocks inflate the decomposition residual and
	// would otherwise mask genuine seasonality (§7: shocks must be
	// "understood and accounted for").
	a.Shocks, a.DiscardedOutliers = detectShocks(y, period, thresh, minOcc)
	a.Unstable = a.DiscardedOutliers > len(y)/50

	// Three full cycles are required to *model* a season (seasonal
	// differencing plus seasonal AR lags consume one cycle each).
	if period >= 2 && len(y) >= 3*period {
		cleaned := suppressOutliers(y, thresh)
		dec, err := decompose.Classical(cleaned, period, decompose.Additive)
		if err == nil {
			a.SeasonalStrength = dec.SeasonalStrength()
		}
		if a.SeasonalStrength >= 0.3 {
			a.Period = period
			a.SeasonalD = 1
		}
	}

	// Multiple seasonality: other detected periods beyond the primary.
	for _, c := range cands {
		if a.Period != 0 && (abs(c.Period-a.Period) <= 2 || c.Period == a.Period) {
			continue
		}
		// Divisors of the primary are harmonics of its (non-sinusoidal)
		// shape — the seasonal ARIMA already models them. Genuine extra
		// seasons are longer (weekly over daily), not shorter.
		if a.Period != 0 && c.Period < a.Period && a.Period%c.Period == 0 {
			continue
		}
		// Require at least three full cycles: longer "periods" are
		// usually trend artefacts of the periodogram, not seasons.
		if c.Period < 2 || len(y) < 3*c.Period {
			continue
		}
		a.ExtraPeriods = append(a.ExtraPeriods, c.Period)
	}

	// Correlograms on the differenced scale (Figure 1a).
	w := timeseries.Difference(y, a.D, a.SeasonalD, max(a.Period, 1))
	if len(w) > maxLag*3 {
		a.ACF = stats.ACF(w, maxLag)
		a.PACF = stats.PACF(w, maxLag)
		a.Band = stats.ConfidenceBand(len(w), 0.95)
	}
	return a, nil
}

// suppressOutliers replaces rolling-median outliers beyond thresh·MAD with
// the local median, so shocks do not pollute the seasonal-strength check.
func suppressOutliers(y []float64, thresh float64) []float64 {
	resid, base := rollingResiduals(y)
	mad := stats.MAD(resid)
	if mad == 0 || math.IsNaN(mad) {
		return y
	}
	out := append([]float64(nil), y...)
	for i, r := range resid {
		if math.Abs(r) > thresh*mad {
			out[i] = base[i]
		}
	}
	return out
}

// rollingResiduals returns y minus a centred leave-one-out rolling median
// (the median of the four nearest neighbours, excluding the point
// itself), plus the baseline. Excluding the centre matters: a centred
// median of a locally monotone window equals the centre value exactly,
// which would make most residuals — and hence their MAD — identically
// zero.
func rollingResiduals(y []float64) (resid, base []float64) {
	resid = make([]float64, len(y))
	base = make([]float64, len(y))
	const half = 2
	win := make([]float64, 0, 2*half)
	for i, v := range y {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(y) {
			hi = len(y) - 1
		}
		win = win[:0]
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			win = append(win, y[j])
		}
		base[i] = stats.Median(win)
		resid[i] = v - base[i]
	}
	return resid, base
}

// detectShocks finds recurring outliers. The baseline is a centred
// rolling median, which tracks smooth seasonal movement but is robust to
// short spikes — so a backup that fires every midnight still stands out
// (a per-phase baseline would absorb perfectly recurring shocks into the
// seasonal profile and hide them). Excess residuals beyond thresh·MAD are
// grouped by phase within the period; a phase qualifying in at least
// minOcc cycles becomes a Shock behaviour.
func detectShocks(y []float64, period int, thresh float64, minOcc int) ([]Shock, int) {
	if period < 2 || len(y) < 3*period {
		return nil, 0
	}
	resid, _ := rollingResiduals(y)
	mad := stats.MAD(resid)
	if mad == 0 || math.IsNaN(mad) {
		return nil, 0
	}
	// Count outliers per phase.
	type acc struct {
		count int
		sum   float64
		pos   int
	}
	phases := make([]acc, period)
	total := 0
	for i, r := range resid {
		// Edge residuals come from one-sided windows and are biased on
		// sloped data; skip them.
		if i < 2 || i >= len(resid)-2 {
			continue
		}
		if math.Abs(r) > thresh*mad {
			p := i % period
			phases[p].count++
			phases[p].sum += math.Abs(r)
			if r > 0 {
				phases[p].pos++
			}
			total++
		}
	}
	var shocks []Shock
	recurring := 0
	for p, ph := range phases {
		if ph.count >= minOcc {
			shocks = append(shocks, Shock{
				Phase:         p,
				Occurrences:   ph.count,
				MeanMagnitude: ph.sum / float64(ph.count),
				Positive:      ph.pos*2 >= ph.count,
			})
			recurring += ph.count
		}
	}
	return shocks, total - recurring
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
