package ingest

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metricstore"
)

// Property: wire round-tripping a shuffled batch and delivering it
// twice (at-least-once redelivery) lands exactly where one in-order
// PutBatch does — out-of-order arrival and duplicate delivery are both
// absorbed by the repository's (key, timestamp) overwrite semantics.
func TestWireRedeliveryIdempotentProperty(t *testing.T) {
	base := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	targets := []string{"cdbm011", "cdbm012"}
	metrics := []string{"cpu", "memory"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		ordered := make([]metricstore.Sample, n)
		for i := range ordered {
			ordered[i] = metricstore.Sample{
				Target: targets[rng.Intn(len(targets))],
				Metric: metrics[rng.Intn(len(metrics))],
				At:     base.Add(time.Duration(i) * 15 * time.Minute),
				Value:  rng.NormFloat64() * 50,
			}
		}
		want := metricstore.New()
		want.PutBatch(ordered)

		shuffled := append([]metricstore.Sample(nil), ordered...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := metricstore.New()
		for round := 0; round < 2; round++ {
			// Split into random wire batches, round-trip each through the
			// encoder, and deliver.
			for off := 0; off < n; {
				sz := 1 + rng.Intn(n-off)
				var buf bytes.Buffer
				if err := EncodeBatch(&buf, shuffled[off:off+sz]); err != nil {
					return false
				}
				decoded, err := DecodeBatch(&buf, 0)
				if err != nil {
					return false
				}
				got.PutBatch(decoded)
				off += sz
			}
		}
		for _, k := range want.Keys() {
			w, g := want.Raw(k), got.Raw(k)
			if len(w) != len(g) {
				return false
			}
			for i := range w {
				if !w[i].At.Equal(g[i].At) || w[i].Value != g[i].Value {
					return false
				}
			}
		}
		return len(want.Keys()) == len(got.Keys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
