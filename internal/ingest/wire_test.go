package ingest

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metricstore"
)

var w0 = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

func wireSamples(n int) []metricstore.Sample {
	out := make([]metricstore.Sample, n)
	for i := range out {
		out[i] = metricstore.Sample{
			Target: "cdbm011", Metric: "cpu",
			At:    w0.Add(time.Duration(i) * 15 * time.Minute),
			Value: float64(i) * 1.5,
		}
	}
	return out
}

func TestWireRoundTrip(t *testing.T) {
	in := wireSamples(7)
	in[3].Target, in[3].Metric = "cdbm012", "logical_iops"
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Target != in[i].Target || out[i].Metric != in[i].Metric ||
			!out[i].At.Equal(in[i].At) || out[i].Value != in[i].Value {
			t.Fatalf("sample %d: %+v vs %+v", i, out[i], in[i])
		}
		if out[i].At.Location() != time.UTC {
			t.Fatalf("sample %d not UTC: %v", i, out[i].At)
		}
	}
}

func TestWireRoundTripEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(&buf, 10)
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestEncodeRejectsInvalidSamples(t *testing.T) {
	for name, smp := range map[string]metricstore.Sample{
		"empty target": {Metric: "cpu", At: w0, Value: 1},
		"empty metric": {Target: "d", At: w0, Value: 1},
		"zero time":    {Target: "d", Metric: "cpu", Value: 1},
		"nan":          {Target: "d", Metric: "cpu", At: w0, Value: math.NaN()},
		"inf":          {Target: "d", Metric: "cpu", At: w0, Value: math.Inf(1)},
	} {
		var buf bytes.Buffer
		if err := EncodeBatch(&buf, []metricstore.Sample{smp}); err == nil {
			t.Errorf("%s: encode accepted %+v", name, smp)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch(strings.NewReader("not gzip"), 0); err == nil {
		t.Fatal("plain text accepted")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, wireSamples(1)); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by rewriting the envelope.
	payload := bytes.Replace(gunzip(t, buf.Bytes()), []byte(`"version":2`), []byte(`"version":99`), 1)
	if !bytes.Contains(payload, []byte(`"version":99`)) {
		t.Fatal("version rewrite missed — envelope layout changed?")
	}
	if _, err := DecodeBatch(regzip(t, payload), 0); err == nil ||
		!strings.Contains(err.Error(), "unsupported wire version") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeAcceptsVersion1(t *testing.T) {
	// A v1 sender predates the traceparent field entirely; the collector
	// must keep accepting its envelopes during a rolling upgrade.
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, wireSamples(3)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Replace(gunzip(t, buf.Bytes()), []byte(`"version":2`), []byte(`"version":1`), 1)
	samples, meta, err := DecodeBatchMeta(regzip(t, payload), 0)
	if err != nil {
		t.Fatalf("v1 envelope rejected: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("decoded %d samples, want 3", len(samples))
	}
	if meta.Version != 1 || meta.Traceparent != "" {
		t.Fatalf("meta = %+v, want version 1 with no trace", meta)
	}
}

func TestTraceparentRoundTripsThroughEnvelope(t *testing.T) {
	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	var buf bytes.Buffer
	if err := EncodeBatchTraced(&buf, wireSamples(2), tp); err != nil {
		t.Fatal(err)
	}
	samples, meta, err := DecodeBatchMeta(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("decoded %d samples, want 2", len(samples))
	}
	if meta.Version != WireVersion || meta.Traceparent != tp {
		t.Fatalf("meta = %+v, want version %d traceparent %s", meta, WireVersion, tp)
	}
	// Untraced batches stay lean: no traceparent key in the envelope.
	buf.Reset()
	if err := EncodeBatch(&buf, wireSamples(1)); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(gunzip(t, buf.Bytes()), []byte("traceparent")) {
		t.Fatal("untraced envelope carries a traceparent key")
	}
}

func TestDecodeEnforcesBatchLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, wireSamples(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatch(bytes.NewReader(buf.Bytes()), 4); err == nil {
		t.Fatal("over-limit batch accepted")
	}
	if _, err := DecodeBatch(bytes.NewReader(buf.Bytes()), 5); err != nil {
		t.Fatalf("at-limit batch rejected: %v", err)
	}
}

func TestDecodeValidatesSamples(t *testing.T) {
	payload := []byte(`{"version":1,"samples":[{"target":"","metric":"cpu","at_ms":1,"value":2}]}`)
	if _, err := DecodeBatch(regzip(t, payload), 0); err == nil {
		t.Fatal("empty target accepted")
	}
}

// gunzip decompresses a wire payload for tampering.
func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// regzip recompresses a tampered payload into a decodable reader.
func regzip(t *testing.T, b []byte) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}
