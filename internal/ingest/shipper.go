package ingest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metricstore"
	"repro/internal/obs"
)

// ShipperConfig tunes the remote-write client.
type ShipperConfig struct {
	// URL is the collector endpoint, e.g. "http://host:8080/api/v1/ingest".
	// Required.
	URL string
	// BatchSize triggers a flush when this many samples are buffered
	// (0 → 500).
	BatchSize int
	// FlushInterval triggers a flush even when the batch is short
	// (0 → 2s).
	FlushInterval time.Duration
	// QueueSize bounds the in-memory buffer between Put and the sender
	// (0 → 8192). When full, Put drops (or blocks, see BlockOnFull).
	QueueSize int
	// BlockOnFull makes Put block until queue space frees instead of
	// dropping — backpressure propagates to the producer. Replay-style
	// producers (capplan push) want this; live pollers usually do not.
	BlockOnFull bool
	// MaxAttempts bounds delivery tries per batch, first attempt
	// included (0 → 8). An exhausted batch is dropped and counted.
	MaxAttempts int
	// BaseBackoff seeds the exponential retry delay (0 → 100ms); each
	// retry doubles it up to MaxBackoff (0 → 5s), plus up to 50% jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Client posts the batches (nil → a client with a 10s timeout).
	Client *http.Client
	// Seed drives retry jitter (deterministic tests).
	Seed uint64
	// Obs receives shipper_batches_sent_total, shipper_retries_total,
	// shipper_samples_dropped_total and the shipper_queue_depth gauge.
	Obs *obs.Observer
}

// ShipperStats is a point-in-time delivery summary.
type ShipperStats struct {
	BatchesSent    int64
	SamplesShipped int64
	Retries        int64
	Dropped        int64
}

// Shipper buffers samples and ships them to a collector in compressed
// batches with retries. It satisfies the agent's Sink interface, so an
// agent can deliver to a remote repository exactly as it would to a
// local *metricstore.Store. Delivery is at-least-once: a batch whose
// response is lost may be resent, and the repository's (key, timestamp)
// overwrite semantics absorb the duplicates.
type Shipper struct {
	cfg    ShipperConfig
	queue  chan metricstore.Sample
	ctx    context.Context // send lifetime; cancelled by a hard shutdown
	cancel context.CancelFunc
	drain  chan struct{} // closed by Close to start the graceful drain
	done   chan struct{} // closed when the run loop exits

	mu     sync.RWMutex // guards closed against racing Puts
	closed bool
	once   sync.Once

	rng *rand.Rand // run-loop only

	sent    atomic.Int64
	shipped atomic.Int64
	retries atomic.Int64
	dropped atomic.Int64
}

// NewShipper validates cfg and starts the background sender.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("ingest: shipper needs a collector URL")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 500
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 8192
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Shipper{
		cfg:    cfg,
		queue:  make(chan metricstore.Sample, cfg.QueueSize),
		ctx:    ctx,
		cancel: cancel,
		drain:  make(chan struct{}),
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(int64(cfg.Seed))),
	}
	go s.run()
	return s, nil
}

// Put buffers one sample for shipment. With a full queue it drops the
// sample (counted in shipper_samples_dropped_total) unless BlockOnFull
// is set, in which case it waits for space. After Close every Put is a
// counted drop.
func (s *Shipper) Put(smp metricstore.Sample) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.drop(1)
		return
	}
	if s.cfg.BlockOnFull {
		select {
		case s.queue <- smp:
		case <-s.ctx.Done():
			s.drop(1)
			return
		}
	} else {
		select {
		case s.queue <- smp:
		default:
			s.drop(1)
			return
		}
	}
	s.cfg.Obs.SetGauge("shipper_queue_depth", float64(len(s.queue)))
}

// Close stops intake, drains and flushes the queue, and waits for the
// sender to exit. ctx bounds the drain: when it expires the in-flight
// send is aborted and whatever remains buffered is dropped (counted).
// It returns an error when any sample was dropped over the shipper's
// lifetime, so replay producers can detect loss.
func (s *Shipper) Close(ctx context.Context) error {
	s.once.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.drain)
	})
	select {
	case <-s.done:
	case <-ctx.Done():
		s.cancel() // abort the in-flight send and the backoff sleeps
		<-s.done
	}
	s.cancel()
	if n := s.dropped.Load(); n > 0 {
		return fmt.Errorf("ingest: shipper dropped %d samples", n)
	}
	return nil
}

// Stats returns the delivery counters.
func (s *Shipper) Stats() ShipperStats {
	return ShipperStats{
		BatchesSent:    s.sent.Load(),
		SamplesShipped: s.shipped.Load(),
		Retries:        s.retries.Load(),
		Dropped:        s.dropped.Load(),
	}
}

// run is the single sender goroutine: batch on size or interval, drain
// on Close, stop on hard cancellation.
func (s *Shipper) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]metricstore.Sample, 0, s.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.send(batch)
		batch = batch[:0]
		s.cfg.Obs.SetGauge("shipper_queue_depth", float64(len(s.queue)))
	}
	for {
		select {
		case smp := <-s.queue:
			batch = append(batch, smp)
			if len(batch) >= s.cfg.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-s.ctx.Done():
			s.drop(int64(len(batch) + len(s.queue)))
			return
		case <-s.drain:
			// Graceful shutdown: Close flipped `closed` under the write
			// lock before signalling, so no Put can enqueue after this
			// loop observes an empty queue.
			for {
				select {
				case smp := <-s.queue:
					batch = append(batch, smp)
					if len(batch) >= s.cfg.BatchSize {
						flush()
					}
				case <-s.ctx.Done():
					s.drop(int64(len(batch) + len(s.queue)))
					return
				default:
					flush()
					return
				}
			}
		}
	}
}

// send delivers one batch with exponential backoff + jitter, honouring
// Retry-After hints. Permanent rejections (4xx other than 429) and
// exhausted attempts drop the batch.
//
// Each batch gets its own trace: a "shipper.ship" root span whose trace
// context rides the wire (header + envelope). The batch is encoded once
// before the retry loop, so a retried or redelivered batch carries the
// same trace ID as its first attempt — the collector sees one trace per
// logical batch, not one per HTTP request.
func (s *Shipper) send(batch []metricstore.Sample) {
	o := s.cfg.Obs
	sp := o.StartSpan("shipper.ship")
	defer sp.End()
	sc := sp.Context()
	if sc.IsZero() {
		// Span recording is off, but the wire trace context costs nothing
		// and lets the collector side still correlate batches.
		sc = obs.NewSpanContext()
	}
	tp := sc.TraceParent()
	sp.Set("samples", len(batch))
	sp.Set("traceparent", tp)
	started := time.Now()
	var buf bytes.Buffer
	if err := EncodeBatchTraced(&buf, batch, tp); err != nil {
		s.drop(int64(len(batch)))
		sp.Fail(err)
		o.Error("batch dropped", "samples", len(batch), "attempts", 0, "err", err)
		return
	}
	body := buf.Bytes()
	backoff := s.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		permanent, retryAfter, err := s.post(body, tp)
		if err == nil {
			s.sent.Add(1)
			s.shipped.Add(int64(len(batch)))
			sp.Set("attempts", attempt)
			o.Count("shipper_batches_sent_total", 1)
			o.ObserveDurationTraced("shipper_ship_seconds", time.Since(started), sc.Trace.String())
			o.Debug("batch shipped", "samples", len(batch), "attempt", attempt, "traceparent", tp)
			return
		}
		if permanent || attempt >= s.cfg.MaxAttempts || s.ctx.Err() != nil {
			s.drop(int64(len(batch)))
			sp.Set("attempts", attempt)
			sp.Fail(err)
			o.Error("batch dropped", "samples", len(batch), "attempts", attempt, "err", err)
			return
		}
		s.retries.Add(1)
		o.Count("shipper_retries_total", 1)
		delay := backoff + time.Duration(s.rng.Int63n(int64(backoff)/2+1))
		if retryAfter > delay {
			delay = retryAfter
		}
		o.Warn("batch send failed, retrying", "samples", len(batch),
			"attempt", attempt, "delay", delay, "err", err)
		if backoff *= 2; backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
		select {
		case <-time.After(delay):
		case <-s.ctx.Done():
			s.drop(int64(len(batch)))
			return
		}
	}
}

// post performs one HTTP delivery attempt of a pre-encoded batch body.
func (s *Shipper) post(body []byte, traceparent string) (permanent bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(s.ctx, http.MethodPost, s.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return true, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	if traceparent != "" {
		req.Header.Set(TraceparentHeader, traceparent)
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		return false, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return false, retryAfter, fmt.Errorf("ingest: collector over capacity (429)")
	case resp.StatusCode >= 500:
		return false, 0, fmt.Errorf("ingest: collector error %s", resp.Status)
	default:
		return true, 0, fmt.Errorf("ingest: collector rejected batch: %s", resp.Status)
	}
}

// drop counts lost samples.
func (s *Shipper) drop(n int64) {
	if n <= 0 {
		return
	}
	s.dropped.Add(n)
	s.cfg.Obs.Count("shipper_samples_dropped_total", n)
}
