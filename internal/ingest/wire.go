// Package ingest is the networked remote-write path of the paper's §5.1
// architecture: agents on database hosts ship metric samples over HTTP
// to the central repository instead of calling it in-process. The
// package has two halves — a collector (an http.Handler that decodes,
// validates and batch-appends samples into a metricstore under
// backpressure) and a Shipper (a metricstore-compatible sink that
// buffers samples into a bounded queue and flushes gzip-compressed
// batches with exponential-backoff retries). Delivery is at-least-once;
// the repository's (key, timestamp) overwrite semantics make redelivery
// idempotent.
package ingest

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/metricstore"
)

// WireVersion is the current batch envelope version. Decoders reject
// versions they do not understand so a fleet can be upgraded
// collector-first.
const WireVersion = 1

// Path is the collector's HTTP route on the shared observability mux.
const Path = "/api/v1/ingest"

// wireSample is the on-the-wire form of one metricstore.Sample.
// Timestamps travel as Unix milliseconds so the format is independent
// of Go's time encoding.
type wireSample struct {
	Target string  `json:"target"`
	Metric string  `json:"metric"`
	AtMs   int64   `json:"at_ms"`
	Value  float64 `json:"value"`
}

// wireBatch is the versioned envelope: a JSON document, gzip-compressed
// on the wire.
type wireBatch struct {
	Version int          `json:"version"`
	Samples []wireSample `json:"samples"`
}

// ValidateSample checks one sample against the collector's admission
// rules: non-empty target and metric, a set timestamp, and a finite
// value (JSON cannot carry NaN/Inf, and the aggregation layer must
// never see them).
func ValidateSample(s metricstore.Sample) error {
	if s.Target == "" {
		return fmt.Errorf("ingest: sample with empty target")
	}
	if s.Metric == "" {
		return fmt.Errorf("ingest: sample with empty metric")
	}
	if s.At.IsZero() {
		return fmt.Errorf("ingest: sample %s/%s with zero timestamp", s.Target, s.Metric)
	}
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return fmt.Errorf("ingest: sample %s/%s with non-finite value", s.Target, s.Metric)
	}
	return nil
}

// EncodeBatch writes samples to w as a gzip-compressed version-1
// envelope. Every sample must pass ValidateSample.
func EncodeBatch(w io.Writer, samples []metricstore.Sample) error {
	batch := wireBatch{Version: WireVersion, Samples: make([]wireSample, len(samples))}
	for i, s := range samples {
		if err := ValidateSample(s); err != nil {
			return err
		}
		batch.Samples[i] = wireSample{
			Target: s.Target,
			Metric: s.Metric,
			AtMs:   s.At.UnixMilli(),
			Value:  s.Value,
		}
	}
	zw := gzip.NewWriter(w)
	if err := json.NewEncoder(zw).Encode(batch); err != nil {
		zw.Close()
		return fmt.Errorf("ingest: encode batch: %w", err)
	}
	return zw.Close()
}

// DecodeBatch reads one gzip-compressed envelope from r, checks the
// version, enforces maxSamples (0 = unlimited) and validates every
// sample. Decoded timestamps are UTC.
func DecodeBatch(r io.Reader, maxSamples int) ([]metricstore.Sample, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: not a gzip stream: %w", err)
	}
	defer zr.Close()
	var batch wireBatch
	dec := json.NewDecoder(zr)
	if err := dec.Decode(&batch); err != nil {
		return nil, fmt.Errorf("ingest: decode batch: %w", err)
	}
	if batch.Version != WireVersion {
		return nil, fmt.Errorf("ingest: unsupported wire version %d (want %d)", batch.Version, WireVersion)
	}
	if maxSamples > 0 && len(batch.Samples) > maxSamples {
		return nil, fmt.Errorf("ingest: batch of %d samples exceeds limit %d", len(batch.Samples), maxSamples)
	}
	out := make([]metricstore.Sample, len(batch.Samples))
	for i, ws := range batch.Samples {
		out[i] = metricstore.Sample{
			Target: ws.Target,
			Metric: ws.Metric,
			At:     time.UnixMilli(ws.AtMs).UTC(),
			Value:  ws.Value,
		}
		if err := ValidateSample(out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
