// Package ingest is the networked remote-write path of the paper's §5.1
// architecture: agents on database hosts ship metric samples over HTTP
// to the central repository instead of calling it in-process. The
// package has two halves — a collector (an http.Handler that decodes,
// validates and batch-appends samples into a metricstore under
// backpressure) and a Shipper (a metricstore-compatible sink that
// buffers samples into a bounded queue and flushes gzip-compressed
// batches with exponential-backoff retries). Delivery is at-least-once;
// the repository's (key, timestamp) overwrite semantics make redelivery
// idempotent.
package ingest

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/metricstore"
)

// WireVersion is the current batch envelope version. Version 2 adds an
// optional traceparent field carrying the shipper's trace context; the
// decoder still accepts version 1 (which simply has no trace), so a
// fleet upgrades collector-first without a flag day. Decoders reject
// versions they do not understand.
const WireVersion = 2

// minWireVersion is the oldest envelope the decoder accepts.
const minWireVersion = 1

// Path is the collector's HTTP route on the shared observability mux.
const Path = "/api/v1/ingest"

// TraceparentHeader is the HTTP request header carrying the shipper's
// W3C trace context. The same value also travels inside the v2
// envelope, so the trace survives intermediaries that strip headers.
const TraceparentHeader = "Traceparent"

// wireSample is the on-the-wire form of one metricstore.Sample.
// Timestamps travel as Unix milliseconds so the format is independent
// of Go's time encoding.
type wireSample struct {
	Target string  `json:"target"`
	Metric string  `json:"metric"`
	AtMs   int64   `json:"at_ms"`
	Value  float64 `json:"value"`
}

// wireBatch is the versioned envelope: a JSON document, gzip-compressed
// on the wire.
type wireBatch struct {
	Version     int          `json:"version"`
	Traceparent string       `json:"traceparent,omitempty"`
	Samples     []wireSample `json:"samples"`
}

// BatchMeta is the envelope metadata a decoded batch carried alongside
// its samples.
type BatchMeta struct {
	// Version is the envelope version the sender wrote (1 or 2).
	Version int
	// Traceparent is the sender's W3C trace context, "" when absent
	// (v1 envelopes, or a v2 sender with tracing off).
	Traceparent string
}

// ValidateSample checks one sample against the collector's admission
// rules: non-empty target and metric, a set timestamp, and a finite
// value (JSON cannot carry NaN/Inf, and the aggregation layer must
// never see them).
func ValidateSample(s metricstore.Sample) error {
	if s.Target == "" {
		return fmt.Errorf("ingest: sample with empty target")
	}
	if s.Metric == "" {
		return fmt.Errorf("ingest: sample with empty metric")
	}
	if s.At.IsZero() {
		return fmt.Errorf("ingest: sample %s/%s with zero timestamp", s.Target, s.Metric)
	}
	if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return fmt.Errorf("ingest: sample %s/%s with non-finite value", s.Target, s.Metric)
	}
	return nil
}

// EncodeBatch writes samples to w as a gzip-compressed current-version
// envelope with no trace context. Every sample must pass ValidateSample.
func EncodeBatch(w io.Writer, samples []metricstore.Sample) error {
	return EncodeBatchTraced(w, samples, "")
}

// EncodeBatchTraced is EncodeBatch with the sender's traceparent
// stamped into the envelope, so the collector can continue the trace
// that produced the batch.
func EncodeBatchTraced(w io.Writer, samples []metricstore.Sample, traceparent string) error {
	batch := wireBatch{
		Version:     WireVersion,
		Traceparent: traceparent,
		Samples:     make([]wireSample, len(samples)),
	}
	for i, s := range samples {
		if err := ValidateSample(s); err != nil {
			return err
		}
		batch.Samples[i] = wireSample{
			Target: s.Target,
			Metric: s.Metric,
			AtMs:   s.At.UnixMilli(),
			Value:  s.Value,
		}
	}
	zw := gzip.NewWriter(w)
	if err := json.NewEncoder(zw).Encode(batch); err != nil {
		zw.Close()
		return fmt.Errorf("ingest: encode batch: %w", err)
	}
	return zw.Close()
}

// DecodeBatch reads one gzip-compressed envelope from r, checks the
// version, enforces maxSamples (0 = unlimited) and validates every
// sample. Decoded timestamps are UTC.
func DecodeBatch(r io.Reader, maxSamples int) ([]metricstore.Sample, error) {
	samples, _, err := DecodeBatchMeta(r, maxSamples)
	return samples, err
}

// DecodeBatchMeta is DecodeBatch plus the envelope metadata (wire
// version and the sender's traceparent, when present).
func DecodeBatchMeta(r io.Reader, maxSamples int) ([]metricstore.Sample, BatchMeta, error) {
	var meta BatchMeta
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, meta, fmt.Errorf("ingest: not a gzip stream: %w", err)
	}
	defer zr.Close()
	var batch wireBatch
	dec := json.NewDecoder(zr)
	if err := dec.Decode(&batch); err != nil {
		return nil, meta, fmt.Errorf("ingest: decode batch: %w", err)
	}
	if batch.Version < minWireVersion || batch.Version > WireVersion {
		return nil, meta, fmt.Errorf("ingest: unsupported wire version %d (want %d..%d)",
			batch.Version, minWireVersion, WireVersion)
	}
	if maxSamples > 0 && len(batch.Samples) > maxSamples {
		return nil, meta, fmt.Errorf("ingest: batch of %d samples exceeds limit %d", len(batch.Samples), maxSamples)
	}
	meta = BatchMeta{Version: batch.Version, Traceparent: batch.Traceparent}
	out := make([]metricstore.Sample, len(batch.Samples))
	for i, ws := range batch.Samples {
		out[i] = metricstore.Sample{
			Target: ws.Target,
			Metric: ws.Metric,
			At:     time.UnixMilli(ws.AtMs).UTC(),
			Value:  ws.Value,
		}
		if err := ValidateSample(out[i]); err != nil {
			return nil, meta, err
		}
	}
	return out, meta, nil
}
