package ingest

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metricstore"
	"repro/internal/obs"
)

// BatchSink receives validated sample batches. *metricstore.Store
// satisfies it with a single lock acquisition per batch.
type BatchSink interface {
	PutBatch([]metricstore.Sample)
}

// TracedBatchSink is a BatchSink that also remembers which trace last
// wrote each key, so the repository's downstream pipeline (monitor
// observations, staleness refits) can continue the trace that delivered
// the data. *metricstore.Store satisfies it.
type TracedBatchSink interface {
	BatchSink
	PutBatchTraced(samples []metricstore.Sample, traceparent string)
}

// ServerConfig tunes the collector.
type ServerConfig struct {
	// Store receives every accepted batch. Required.
	Store BatchSink
	// MaxBatch caps samples per request (0 → 50000); larger batches are
	// rejected with 400 before they reach the store.
	MaxBatch int
	// MaxBodyBytes caps the compressed request body (0 → 8 MiB).
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently decoded requests; excess requests
	// get 429 + Retry-After instead of queueing (0 → 4).
	MaxInFlight int
	// RetryAfter is the backpressure hint sent with a 429 (0 → 1s worth:
	// the header carries whole seconds, minimum 1).
	RetryAfter int
	// Obs receives ingest_requests_total{code}, ingest_samples_total and
	// ingest_decode_errors_total. nil disables.
	Obs *obs.Observer
}

// Collector is the repository's remote-write endpoint: POST Path with a
// gzip-compressed version-1 batch. It implements http.Handler.
type Collector struct {
	cfg      ServerConfig
	inflight chan struct{}
}

// NewCollector validates cfg and builds the endpoint handler.
func NewCollector(cfg ServerConfig) (*Collector, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("ingest: collector needs a store")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 50000
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 1
	}
	return &Collector{cfg: cfg, inflight: make(chan struct{}, cfg.MaxInFlight)}, nil
}

// ServeHTTP decodes, validates and appends one batch. Responses:
// 204 accepted, 400 malformed, 405 not POST, 413 oversized body,
// 429 over the in-flight limit (with Retry-After).
func (c *Collector) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	o := c.cfg.Obs
	if req.Method != http.MethodPost {
		o.Count("ingest_requests_total", 1, obs.L("code", "405"))
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "ingest accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	// Backpressure: admission is a non-blocking semaphore acquire, so a
	// slow store surfaces to shippers as 429 instead of piled-up
	// goroutines.
	select {
	case c.inflight <- struct{}{}:
		o.SetGauge("ingest_inflight", float64(len(c.inflight)))
		defer func() {
			<-c.inflight
			o.SetGauge("ingest_inflight", float64(len(c.inflight)))
		}()
	default:
		o.Count("ingest_requests_total", 1, obs.L("code", "429"))
		w.Header().Set("Retry-After", strconv.Itoa(c.cfg.RetryAfter))
		http.Error(w, "ingest over capacity, retry later", http.StatusTooManyRequests)
		return
	}
	body := http.MaxBytesReader(w, req.Body, c.cfg.MaxBodyBytes)
	samples, meta, err := DecodeBatchMeta(body, c.cfg.MaxBatch)
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		o.Count("ingest_decode_errors_total", 1)
		o.Count("ingest_requests_total", 1, obs.L("code", strconv.Itoa(code)))
		o.Warn("ingest batch rejected", "err", err, "remote", req.RemoteAddr)
		http.Error(w, err.Error(), code)
		return
	}
	// Continue the shipper's trace: the header wins, the envelope field
	// is the fallback for intermediaries that strip unknown headers.
	tp := req.Header.Get(TraceparentHeader)
	if tp == "" {
		tp = meta.Traceparent
	}
	var parent obs.SpanContext
	if tp != "" {
		if sc, perr := obs.ParseTraceParent(tp); perr == nil {
			parent = sc
		}
	}
	started := time.Now()
	sp := o.StartSpanRemote("ingest.receive", parent)
	sp.Set("samples", len(samples))
	sp.Set("remote", req.RemoteAddr)
	put := sp.Child("store.put_batch")
	if sink, ok := c.cfg.Store.(TracedBatchSink); ok && tp != "" {
		sink.PutBatchTraced(samples, tp)
	} else {
		c.cfg.Store.PutBatch(samples)
	}
	put.End()
	sp.End()
	traceID := ""
	if tsc := sp.Context(); !tsc.IsZero() {
		traceID = tsc.Trace.String()
	} else if !parent.IsZero() {
		traceID = parent.Trace.String()
	}
	o.ObserveDurationTraced("ingest_batch_seconds", time.Since(started), traceID)
	o.Count("ingest_samples_total", int64(len(samples)))
	o.Count("ingest_requests_total", 1, obs.L("code", "204"))
	o.Debug("ingest batch accepted", "samples", len(samples), "remote", req.RemoteAddr, "traceparent", tp)
	w.WriteHeader(http.StatusNoContent)
}
