package ingest

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metricstore"
	"repro/internal/obs"
)

var _ TracedBatchSink = (*metricstore.Store)(nil)

// TestTraceLineageAcrossRetries drives a batch through two failed
// attempts and a successful third, asserting the trace identity of the
// batch never changes: every HTTP attempt carries the same traceparent,
// the collector's receive span joins the shipper's trace, and the store
// remembers that trace as the keys' last writer.
func TestTraceLineageAcrossRetries(t *testing.T) {
	store := metricstore.New()
	collectorObs := obs.New(obs.Config{Trace: true, Metrics: true})
	c, err := NewCollector(ServerConfig{Store: store, Obs: collectorObs})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		parents []string
		body    []byte
		calls   int
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		parents = append(parents, r.Header.Get(TraceparentHeader))
		calls++
		fail := calls <= 2
		if fail {
			body, _ = io.ReadAll(r.Body)
		}
		mu.Unlock()
		if fail {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		c.ServeHTTP(w, r)
	}))
	defer srv.Close()

	shipperObs := obs.New(obs.Config{Trace: true, Metrics: true})
	s := fastShipper(t, srv.URL, func(cfg *ShipperConfig) { cfg.Obs = shipperObs })
	for _, smp := range wireSamples(4) {
		s.Put(smp)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	parents = append([]string(nil), parents...)
	body = append([]byte(nil), body...)
	mu.Unlock()
	if len(parents) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(parents))
	}
	tp := parents[0]
	if _, err := obs.ParseTraceParent(tp); err != nil {
		t.Fatalf("attempt carried invalid traceparent %q: %v", tp, err)
	}
	for i, p := range parents {
		if p != tp {
			t.Fatalf("attempt %d changed traceparent: %q != %q", i+1, p, tp)
		}
	}

	// The shipper's ship span owns the trace on the wire.
	var ship *obs.Span
	for _, sp := range shipperObs.Spans() {
		if sp.Name() == "shipper.ship" {
			ship = sp
		}
	}
	if ship == nil {
		t.Fatal("no shipper.ship span recorded")
	}
	if got := ship.Context().TraceParent(); got != tp {
		t.Fatalf("ship span traceparent %q != wire %q", got, tp)
	}
	if attempts, _ := ship.Attr("attempts"); attempts != 3 {
		t.Fatalf("ship span attempts = %v, want 3", attempts)
	}

	// The collector's receive span continues the same trace with the ship
	// span as remote parent, and nests the store write under it.
	var recv *obs.Span
	for _, sp := range collectorObs.Spans() {
		if sp.Name() == "ingest.receive" {
			recv = sp
		}
	}
	if recv == nil {
		t.Fatal("no ingest.receive span recorded")
	}
	if recv.Context().Trace != ship.Context().Trace {
		t.Fatal("receive span is not on the shipper's trace")
	}
	if recv.ParentSpanID() != ship.Context().Span {
		t.Fatal("receive span's parent is not the ship span")
	}
	if recv.Find("store.put_batch") == nil {
		t.Fatal("no store.put_batch child under ingest.receive")
	}

	// The store's lineage hand-off for the downstream pipeline.
	for _, k := range store.Keys() {
		if got := store.LastTrace(k); got != tp {
			t.Fatalf("LastTrace(%s) = %q, want %q", k, got, tp)
		}
	}

	// The ingest histogram carries the trace as an exemplar.
	found := false
	for _, es := range collectorObs.Registry().Exemplars() {
		if es.Metric == "ingest_batch_seconds" {
			for _, e := range es.Exemplars {
				if e.TraceID == ship.Context().Trace.String() {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("ingest_batch_seconds has no exemplar for the batch's trace")
	}

	// Redelivery: replay the exact bytes of a failed attempt. The
	// (key, timestamp) overwrite keeps the data idempotent and the
	// lineage stays on the original trace — no orphaned span chain.
	before := store.Count(metricstore.Key{Target: "cdbm011", Metric: "cpu"})
	req, err := http.NewRequest(http.MethodPost, srv.URL+Path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	req.Header.Set(TraceparentHeader, tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("redelivery status = %s", resp.Status)
	}
	if after := store.Count(metricstore.Key{Target: "cdbm011", Metric: "cpu"}); after != before {
		t.Fatalf("redelivery changed sample count %d -> %d", before, after)
	}
	for _, k := range store.Keys() {
		if got := store.LastTrace(k); got != tp {
			t.Fatalf("after redelivery LastTrace(%s) = %q, want %q", k, got, tp)
		}
	}
}

// TestEnvelopeTraceparentFallback strips the HTTP header (as a proxy
// might) and checks the collector still joins the trace via the v2
// envelope field.
func TestEnvelopeTraceparentFallback(t *testing.T) {
	store := metricstore.New()
	o := obs.New(obs.Config{Trace: true})
	c, err := NewCollector(ServerConfig{Store: store, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del(TraceparentHeader)
		c.ServeHTTP(w, r)
	}))
	defer srv.Close()

	sc := obs.NewSpanContext()
	var buf bytes.Buffer
	if err := EncodeBatchTraced(&buf, wireSamples(2), sc.TraceParent()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+Path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %s", resp.Status)
	}
	spans := o.Spans()
	if len(spans) != 1 || spans[0].Context().Trace != sc.Trace {
		t.Fatalf("receive span did not join the envelope trace: %v", spans)
	}
	for _, k := range store.Keys() {
		if got := store.LastTrace(k); !strings.Contains(got, sc.Trace.String()) {
			t.Fatalf("LastTrace(%s) = %q, want trace %s", k, got, sc.Trace)
		}
	}
}
