package ingest

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metricstore"
	"repro/internal/obs"
)

func postBatch(t *testing.T, h http.Handler, samples []metricstore.Sample) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, samples); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, Path, &buf)
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestCollectorAcceptsBatch(t *testing.T) {
	store := metricstore.New()
	o := obs.New(obs.Config{Metrics: true})
	c, err := NewCollector(ServerConfig{Store: store, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	in := wireSamples(10)
	if rec := postBatch(t, c, in); rec.Code != http.StatusNoContent {
		t.Fatalf("code = %d: %s", rec.Code, rec.Body)
	}
	k := metricstore.Key{Target: "cdbm011", Metric: "cpu"}
	if got := store.Count(k); got != 10 {
		t.Fatalf("stored = %d, want 10", got)
	}
	reg := o.Registry()
	if got := reg.CounterValue("ingest_samples_total"); got != 10 {
		t.Fatalf("ingest_samples_total = %d", got)
	}
	if got := reg.CounterValue("ingest_requests_total"); got != 1 {
		t.Fatalf("ingest_requests_total = %d", got)
	}
}

func TestCollectorMethodNotAllowed(t *testing.T) {
	c, _ := NewCollector(ServerConfig{Store: metricstore.New()})
	req := httptest.NewRequest(http.MethodGet, Path, nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("code = %d", rec.Code)
	}
}

func TestCollectorRejectsGarbage(t *testing.T) {
	o := obs.New(obs.Config{Metrics: true})
	c, _ := NewCollector(ServerConfig{Store: metricstore.New(), Obs: o})
	req := httptest.NewRequest(http.MethodPost, Path, strings.NewReader("not gzip"))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
	if got := o.Registry().CounterValue("ingest_decode_errors_total"); got != 1 {
		t.Fatalf("ingest_decode_errors_total = %d", got)
	}
}

func TestCollectorRejectsOversizedBatch(t *testing.T) {
	c, _ := NewCollector(ServerConfig{Store: metricstore.New(), MaxBatch: 5})
	if rec := postBatch(t, c, wireSamples(6)); rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
	if rec := postBatch(t, c, wireSamples(5)); rec.Code != http.StatusNoContent {
		t.Fatalf("code = %d", rec.Code)
	}
}

func TestCollectorRejectsOversizedBody(t *testing.T) {
	c, _ := NewCollector(ServerConfig{Store: metricstore.New(), MaxBodyBytes: 16})
	if rec := postBatch(t, c, wireSamples(1000)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d", rec.Code)
	}
}

// blockingSink parks PutBatch until released, so a test can hold a
// request in flight.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingSink) PutBatch([]metricstore.Sample) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
}

func TestCollectorBackpressure(t *testing.T) {
	sink := &blockingSink{entered: make(chan struct{}), release: make(chan struct{})}
	o := obs.New(obs.Config{Metrics: true})
	c, err := NewCollector(ServerConfig{Store: sink, MaxInFlight: 1, RetryAfter: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		postBatch(t, c, wireSamples(1))
	}()
	<-sink.entered // first request holds the only slot
	rec := postBatch(t, c, wireSamples(1))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q", got)
	}
	close(sink.release)
	<-done
	if got := o.Registry().Counter("ingest_requests_total", obs.L("code", "429")).Value(); got != 1 {
		t.Fatalf("429 count = %d", got)
	}
}

func TestNewCollectorNeedsStore(t *testing.T) {
	if _, err := NewCollector(ServerConfig{}); err == nil {
		t.Fatal("nil store accepted")
	}
}
