package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/metricstore"
	"repro/internal/obs"
)

// The shipper must slot into the agent's delivery path.
var _ agent.Sink = (*Shipper)(nil)
var _ BatchSink = (*metricstore.Store)(nil)

// newCollectorServer backs an httptest server with a fresh store.
func newCollectorServer(t *testing.T) (*httptest.Server, *metricstore.Store) {
	t.Helper()
	store := metricstore.New()
	c, err := NewCollector(ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	t.Cleanup(srv.Close)
	return srv, store
}

func fastShipper(t *testing.T, url string, mut func(*ShipperConfig)) *Shipper {
	t.Helper()
	cfg := ShipperConfig{
		URL:           url + Path,
		BatchSize:     4,
		FlushInterval: 20 * time.Millisecond,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewShipper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShipperFlushesOnBatchSize(t *testing.T) {
	srv, store := newCollectorServer(t)
	s := fastShipper(t, srv.URL, func(c *ShipperConfig) { c.FlushInterval = time.Hour })
	for _, smp := range wireSamples(4) {
		s.Put(smp)
	}
	k := metricstore.Key{Target: "cdbm011", Metric: "cpu"}
	deadline := time.Now().Add(5 * time.Second)
	for store.Count(k) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("size-triggered flush never delivered: stored %d", store.Count(k))
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BatchesSent != 1 || st.SamplesShipped != 4 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShipperFlushesOnInterval(t *testing.T) {
	srv, store := newCollectorServer(t)
	s := fastShipper(t, srv.URL, nil)
	s.Put(wireSamples(1)[0]) // one sample, well under BatchSize
	k := metricstore.Key{Target: "cdbm011", Metric: "cpu"}
	deadline := time.Now().Add(5 * time.Second)
	for store.Count(k) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestShipperCloseDrains(t *testing.T) {
	srv, store := newCollectorServer(t)
	s := fastShipper(t, srv.URL, func(c *ShipperConfig) { c.FlushInterval = time.Hour; c.BatchSize = 1000 })
	in := wireSamples(37)
	for _, smp := range in {
		s.Put(smp)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := store.Count(metricstore.Key{Target: "cdbm011", Metric: "cpu"}); got != len(in) {
		t.Fatalf("stored = %d, want %d", got, len(in))
	}
	// Put after Close is a counted drop, not a panic.
	s.Put(in[0])
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("post-close drop not counted: %+v", st)
	}
}

func TestShipperRetriesTransientErrors(t *testing.T) {
	store := metricstore.New()
	c, err := NewCollector(ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		c.ServeHTTP(w, r)
	}))
	defer srv.Close()
	s := fastShipper(t, srv.URL, nil)
	for _, smp := range wireSamples(4) {
		s.Put(smp)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retries < 2 || st.Dropped != 0 || st.SamplesShipped != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if got := store.Count(metricstore.Key{Target: "cdbm011", Metric: "cpu"}); got != 4 {
		t.Fatalf("stored = %d", got)
	}
}

func TestShipperHonoursRetryAfterOn429(t *testing.T) {
	store := metricstore.New()
	c, err := NewCollector(ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0") // malformed-ish hint: fall back to backoff
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		c.ServeHTTP(w, r)
	}))
	defer srv.Close()
	s := fastShipper(t, srv.URL, nil)
	for _, smp := range wireSamples(4) {
		s.Put(smp)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Retries != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShipperDropsOnPermanentRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()
	o := obs.New(obs.Config{Metrics: true})
	s := fastShipper(t, srv.URL, func(c *ShipperConfig) { c.Obs = o })
	for _, smp := range wireSamples(4) {
		s.Put(smp)
	}
	if err := s.Close(context.Background()); err == nil {
		t.Fatal("Close should report the dropped batch")
	}
	st := s.Stats()
	if st.Dropped != 4 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := o.Registry().CounterValue("shipper_samples_dropped_total"); got != 4 {
		t.Fatalf("shipper_samples_dropped_total = %d", got)
	}
}

func TestShipperQueueFullDrops(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	defer close(block)
	s := fastShipper(t, srv.URL, func(c *ShipperConfig) {
		c.QueueSize = 2
		c.BatchSize = 1 // every sample goes straight into a (stuck) send
		c.FlushInterval = time.Hour
	})
	// One sample in flight, two queued, the rest must drop.
	for _, smp := range wireSamples(10) {
		s.Put(smp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("full queue never dropped: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = s.Close(ctx) // bounded shutdown with the server still stuck
}

func TestShipperNeedsURL(t *testing.T) {
	if _, err := NewShipper(ShipperConfig{}); err == nil {
		t.Fatal("empty URL accepted")
	}
}
