// Command benchtables regenerates the paper's tables and figures from
// the simulator substrate and prints them in the paper's layout. This is
// the reproduction entry point: compare its output shape with the
// published Table 2 and Figures 1–3, 6, 7 (see EXPERIMENTS.md).
//
// Usage:
//
//	benchtables -table 2a
//	benchtables -fig 7
//	benchtables -all
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Benchtables(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
