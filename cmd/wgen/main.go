// Command wgen generates the paper's experimental workloads (Figures 2
// and 3) to CSV files: it simulates the clustered database, runs the
// monitoring agent, aggregates hourly in the repository, and exports one
// file per instance/metric.
//
// Usage:
//
//	wgen -exp olap -days 42 -out ./data
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Wgen(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
}
