// Command benchcheck maintains the committed performance baseline for the
// fit hot path and gates changes against it, in the spirit of benchstat
// but dependency-free. It parses standard `go test -bench -benchmem`
// output from stdin (or a file argument):
//
//	BenchmarkFitSARIMAX-8   100   17044828 ns/op   290772 B/op   70 allocs/op
//
// Two modes:
//
//	go test -bench ... | benchcheck -update -baseline BENCH_PR5.json
//	    rewrite the baseline from the measured numbers.
//
//	go test -bench ... | benchcheck -baseline BENCH_PR5.json
//	    compare against the baseline and exit non-zero on a large
//	    regression. allocs/op is machine-independent, so its gate is
//	    strict (default 1.25x + 16 absolute slack); bytes/op gets 1.5x;
//	    ns/op varies wildly across CI machines, so its gate is loose
//	    (default 8x) and only catches order-of-magnitude blow-ups.
//
// GOMAXPROCS suffixes (-8) are stripped so baselines written on one
// machine compare on another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded statistics.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Baseline is the committed JSON document.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string           `json:"note"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// ratioSpec is one -ratio assertion: measured ns/op of Num divided by
// measured ns/op of Den must not exceed Max. Unlike the baseline factors,
// a ratio compares two benchmarks from the same run on the same machine,
// so it is stable across hardware and can be gated tightly (e.g. a warm
// refit must cost at most 0.2x a cold one).
type ratioSpec struct {
	Num, Den string
	Max      float64
}

// ratioFlags collects repeated -ratio 'NameA/NameB<=X' flags.
type ratioFlags []ratioSpec

func (r *ratioFlags) String() string {
	parts := make([]string, len(*r))
	for i, s := range *r {
		parts[i] = fmt.Sprintf("%s/%s<=%g", s.Num, s.Den, s.Max)
	}
	return strings.Join(parts, ",")
}

func (r *ratioFlags) Set(v string) error {
	names, max, ok := strings.Cut(v, "<=")
	if !ok {
		return fmt.Errorf("ratio %q: want NameA/NameB<=X", v)
	}
	num, den, ok := strings.Cut(names, "/")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("ratio %q: want NameA/NameB<=X", v)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(max), 64)
	if err != nil || x <= 0 {
		return fmt.Errorf("ratio %q: bad bound %q", v, max)
	}
	*r = append(*r, ratioSpec{Num: strings.TrimSpace(num), Den: strings.TrimSpace(den), Max: x})
	return nil
}

// checkRatios asserts every -ratio bound over the measured ns/op numbers,
// reporting each verdict; it returns the number of violations. Ratios are
// enforced in compare AND update modes — a baseline refresh must not bless
// numbers that break the relative-cost contract.
func checkRatios(measured map[string]Entry, ratios ratioFlags) int {
	failures := 0
	for _, r := range ratios {
		num, okN := measured[r.Num]
		den, okD := measured[r.Den]
		if !okN || !okD {
			fmt.Printf("  FAIL  ratio %s/%s: benchmark not measured\n", r.Num, r.Den)
			failures++
			continue
		}
		if den.NsOp <= 0 {
			fmt.Printf("  FAIL  ratio %s/%s: denominator ns/op is zero\n", r.Num, r.Den)
			failures++
			continue
		}
		got := num.NsOp / den.NsOp
		verdict := "ok"
		if got > r.Max {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("  %-5s ratio %s/%s = %.4f (max %g)\n", verdict, r.Num, r.Den, got, r.Max)
	}
	return failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR5.json", "baseline JSON path")
	update := flag.Bool("update", false, "rewrite the baseline from the measured numbers")
	allocsFactor := flag.Float64("max-allocs-factor", 1.25, "fail when allocs/op exceeds baseline by this factor")
	bytesFactor := flag.Float64("max-bytes-factor", 1.5, "fail when bytes/op exceeds baseline by this factor")
	nsFactor := flag.Float64("max-ns-factor", 8, "fail when ns/op exceeds baseline by this factor")
	note := flag.String("note", "fit hot-path baseline; regenerate with `make bench-baseline`, compare with `make bench-check`", "note written into the baseline with -update")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", "assert measured ns/op ratio 'NameA/NameB<=X' (repeatable; enforced in compare and update modes)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		if n := checkRatios(measured, ratios); n > 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: %d ratio assertion(s) violated; baseline not written\n", n)
			os.Exit(1)
		}
		doc := Baseline{
			Note:       *note,
			Benchmarks: measured,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(measured), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var doc Baseline
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		got := measured[name]
		want, ok := doc.Benchmarks[name]
		if !ok {
			fmt.Printf("  new   %-24s %s (no baseline entry)\n", name, got)
			continue
		}
		// Absolute slack keeps tiny baselines from failing on one stray
		// allocation or page.
		bad := exceeds(got.AllocsOp, want.AllocsOp, *allocsFactor, 16) ||
			exceeds(got.BytesOp, want.BytesOp, *bytesFactor, 4096) ||
			exceeds(got.NsOp, want.NsOp, *nsFactor, 0)
		verdict := "ok"
		if bad {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("  %-5s %-24s %s  (baseline %s)\n", verdict, name, got, want)
	}
	for name := range doc.Benchmarks {
		if _, ok := measured[name]; !ok {
			fmt.Printf("  gone  %-24s in baseline but not measured\n", name)
			failures++
		}
	}
	failures += checkRatios(measured, ratios)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed past the gate (allocs x%.2f, bytes x%.2f, ns x%.2f)\n",
			failures, *allocsFactor, *bytesFactor, *nsFactor)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within the gate\n", len(names))
}

// String renders an entry compactly for the comparison report.
func (e Entry) String() string {
	return fmt.Sprintf("%.0f ns/op, %.0f B/op, %.0f allocs/op", e.NsOp, e.BytesOp, e.AllocsOp)
}

// exceeds reports whether got regressed past factor x baseline + slack.
func exceeds(got, base, factor, slack float64) bool {
	return got > base*factor+slack
}

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output, averaging repeated runs (-count > 1) per benchmark.
func parseBench(f *os.File) (map[string]Entry, error) {
	sums := map[string]Entry{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo so the gate's log keeps the raw go test output too.
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		var e Entry
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsOp = v
				seen = true
			case "B/op":
				e.BytesOp = v
			case "allocs/op":
				e.AllocsOp = v
			}
		}
		if !seen {
			continue
		}
		s := sums[name]
		s.NsOp += e.NsOp
		s.BytesOp += e.BytesOp
		s.AllocsOp += e.AllocsOp
		sums[name] = s
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, s := range sums {
		n := float64(counts[name])
		sums[name] = Entry{NsOp: s.NsOp / n, BytesOp: s.BytesOp / n, AllocsOp: s.AllocsOp / n}
	}
	return sums, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
