// Command capplan is the end-to-end capacity-planning service of §8: it
// simulates a monitored clustered database, collects metrics through the
// agent into the central repository, runs the learning engine on every
// instance/metric, stores champions in the model store, and renders the
// prediction view of the proposed UI (Figure 8) as ASCII charts — plus a
// threshold early-warning check ("predict when a threshold is likely to
// be breached").
//
// `capplan serve` runs the same pipeline as a long-running service: it
// replays the simulated agent feed hour by hour while an online
// evaluator scores live forecast accuracy, refits degraded champions,
// and raises capacity-breach alerts, all observable over HTTP
// (/healthz, /readyz, /metrics, /trace, /alerts, /accuracy,
// /api/v1/targets, /api/v1/exemplars, /debug/pprof). The service also
// scrapes its own pipeline metrics into the repository as
// capplan.self/* forecast targets, so the planner forecasts its own
// capacity with the models it serves.
//
// `capplan serve -ingest` instead accepts remote-write batches on
// POST /api/v1/ingest and trains/monitors over the ingested series;
// `capplan push` is the matching remote agent, shipping a simulated
// workload to that collector over HTTP. Each pushed batch carries a
// W3C-style traceparent, so one trace ID follows a batch from the
// push-side shipper through ingest, store, monitoring and any refit it
// triggers on the serve side.
//
// Usage:
//
//	capplan -exp oltp -days 42 -technique sarimax -threshold-cpu 80
//	capplan serve -exp oltp -days 14 -listen 127.0.0.1:8080 -threshold-cpu 80
//	capplan serve -ingest -days 7 -listen 127.0.0.1:8080
//	capplan push -collector http://127.0.0.1:8080 -exp oltp -days 8
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Capplan(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capplan:", err)
		os.Exit(1)
	}
}
