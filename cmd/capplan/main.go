// Command capplan is the end-to-end capacity-planning service of §8: it
// simulates a monitored clustered database, collects metrics through the
// agent into the central repository, runs the learning engine on every
// instance/metric, stores champions in the model store, and renders the
// prediction view of the proposed UI (Figure 8) as ASCII charts — plus a
// threshold early-warning check ("predict when a threshold is likely to
// be breached").
//
// Usage:
//
//	capplan -exp oltp -days 42 -technique sarimax -threshold-cpu 80
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Capplan(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capplan:", err)
		os.Exit(1)
	}
}
