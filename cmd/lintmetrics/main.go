// Command lintmetrics enforces the repository's metric-naming
// conventions at the call site: every metric name passed as a string
// literal to the obs emission APIs must be snake_case, counters must
// end in _total, and duration histograms must end in _seconds (the
// Prometheus base-unit rule). Gauges are snake_case, must not claim
// the _total counter suffix, and gauges reporting a dimensionless
// proportion (any name with a coverage/health/score/fraction segment,
// e.g. the monitor's forecast-health families) must carry the _ratio
// unit suffix so dashboards can trust their 0–1 scale. A gauge in
// seconds must say which kind: wall-clock instants end in
// _timestamp_seconds (the planner's *_last_plan_timestamp_seconds),
// elapsed spans carry an uptime/age/duration/elapsed segment
// (process_uptime_seconds); a bare *_seconds gauge is ambiguous and
// rejected.
//
// It walks the non-test Go files under internal/ and cmd/ with go/ast,
// so renaming a metric in code keeps CI honest without a scrape-time
// check. Dynamic names (non-literal first arguments) are skipped —
// there are none today, and the lint is about keeping the literal
// vocabulary consistent.
//
// Usage: go run ./cmd/lintmetrics [dir ...]   (default: internal cmd)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// kind classifies an emission API by the suffix rule its names follow.
type kind int

const (
	kindCounter kind = iota
	kindHistogram
	kindGauge
)

// methods maps the obs.Observer / obs.Registry emission methods to the
// naming rule their first argument must satisfy.
var methods = map[string]kind{
	"Count":                 kindCounter,
	"Counter":               kindCounter,
	"Observe":               kindHistogram,
	"ObserveTraced":         kindHistogram,
	"ObserveDuration":       kindHistogram,
	"ObserveDurationTraced": kindHistogram,
	"Histogram":             kindHistogram,
	"SetGauge":              kindGauge,
	"Gauge":                 kindGauge,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// ratioStems are name segments that mark a gauge as a dimensionless
// proportion; such gauges must end in _ratio.
var ratioStems = map[string]bool{
	"coverage": true,
	"health":   true,
	"score":    true,
	"fraction": true,
}

// needsRatioSuffix reports whether name contains a ratio stem segment.
func needsRatioSuffix(name string) bool {
	for _, seg := range strings.Split(name, "_") {
		if ratioStems[seg] {
			return true
		}
	}
	return false
}

// elapsedStems are name segments that mark a _seconds gauge as an
// elapsed-time reading (a span, not an instant).
var elapsedStems = map[string]bool{
	"uptime":   true,
	"age":      true,
	"duration": true,
	"elapsed":  true,
}

// secondsGaugeOK reports whether a gauge ending in _seconds says which
// kind of seconds it carries: a wall-clock instant must spell
// _timestamp_seconds (the Prometheus convention the planner's
// *_last_plan_timestamp_seconds follows), and a span must carry an
// elapsed-time stem like uptime or age. A bare *_seconds gauge is
// ambiguous between the two and rejected.
func secondsGaugeOK(name string) bool {
	if strings.HasSuffix(name, "_timestamp_seconds") {
		return true
	}
	for _, seg := range strings.Split(strings.TrimSuffix(name, "_seconds"), "_") {
		if elapsedStems[seg] {
			return true
		}
	}
	return false
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal", "cmd"}
	}
	fset := token.NewFileSet()
	bad := 0
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			bad += lintFile(fset, path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintmetrics: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintmetrics: %d naming violation(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile parses one file and reports every violating call site.
func lintFile(fset *token.FileSet, path string) int {
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintmetrics: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		k, ok := methods[sel.Sel.Name]
		if !ok {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if msg := check(k, name); msg != "" {
			fmt.Fprintf(os.Stderr, "%s: %s(%q): %s\n",
				fset.Position(lit.Pos()), sel.Sel.Name, name, msg)
			bad++
		}
		return true
	})
	return bad
}

// check applies the naming rule for one metric kind.
func check(k kind, name string) string {
	if !snakeCase.MatchString(name) {
		return "metric names must be snake_case ([a-z0-9_], starting with a letter)"
	}
	switch k {
	case kindCounter:
		if !strings.HasSuffix(name, "_total") {
			return "counters must end in _total"
		}
	case kindHistogram:
		if !strings.HasSuffix(name, "_seconds") {
			return "duration histograms must end in _seconds (record base units)"
		}
	case kindGauge:
		if strings.HasSuffix(name, "_total") {
			return "gauges must not use the _total counter suffix"
		}
		if needsRatioSuffix(name) && !strings.HasSuffix(name, "_ratio") {
			return "coverage/health/score gauges must end in _ratio (dimensionless proportion)"
		}
		if strings.HasSuffix(name, "_seconds") && !secondsGaugeOK(name) {
			return "seconds gauges must be _timestamp_seconds (instant) or name an elapsed span (uptime/age/duration)"
		}
	}
	return ""
}
