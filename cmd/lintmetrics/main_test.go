package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestLintFlagsEachViolationKind(t *testing.T) {
	src := `package p

func emit(o anyObs) {
	o.Count("requests")                       // missing _total
	o.Count("ingest_requests_total")          // ok
	o.ObserveDuration("fit_time_ms", 0)       // wrong unit suffix
	o.ObserveDurationTraced("fit_seconds", 0, "") // ok
	o.SetGauge("queue_total", 1)              // gauge claiming counter suffix
	o.SetGauge("queue_depth", 1)              // ok
	o.SetGauge("interval_coverage", 1)        // proportion gauge missing _ratio
	o.SetGauge("interval_coverage_ratio", 1)  // ok
	o.Count("CamelCase_total")                // not snake_case
	o.Count(dynamicName)                      // non-literal: skipped
}
`
	dir := t.TempDir()
	path := filepath.Join(dir, "emit.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := lintFile(token.NewFileSet(), path); got != 5 {
		t.Fatalf("lintFile found %d violations, want 5", got)
	}
}

func TestCheckRules(t *testing.T) {
	cases := []struct {
		k    kind
		name string
		ok   bool
	}{
		{kindCounter, "polls_total", true},
		{kindCounter, "polls", false},
		{kindHistogram, "fit_duration_seconds", true},
		{kindHistogram, "fit_duration", false},
		{kindGauge, "go_heap_alloc_bytes", true},
		{kindGauge, "process_uptime_seconds", true}, // gauges may measure seconds
		{kindGauge, "evictions_total", false},
		{kindCounter, "_total", false},
		{kindCounter, "double__underscore_total", false},
		// Dimensionless-proportion gauges must carry the _ratio suffix.
		{kindGauge, "forecast_interval_coverage_ratio", true},
		{kindGauge, "forecast_health_ratio", true},
		{kindGauge, "forecast_interval_coverage", false},
		{kindGauge, "forecast_health", false},
		{kindGauge, "quality_score", false},
		{kindGauge, "covered_fraction", false},
		// "score"/"health" only count as whole segments, not substrings.
		{kindGauge, "scoreboard_depth", true},
		{kindGauge, "healthz_checks", true},
		// Seconds gauges must disambiguate instants from spans: the
		// planner's timestamp gauge and elapsed-span gauges pass, a bare
		// *_seconds gauge does not.
		{kindGauge, "planner_last_plan_timestamp_seconds", true},
		{kindGauge, "store_snapshot_age_seconds", true},
		{kindGauge, "planner_last_plan_seconds", false},
		{kindGauge, "refit_seconds", false},
		// Histograms keep the plain _seconds rule — they are durations by
		// construction.
		{kindHistogram, "plan_step_seconds", true},
	}
	for _, c := range cases {
		if msg := check(c.k, c.name); (msg == "") != c.ok {
			t.Errorf("check(%v, %q) = %q, want ok=%v", c.k, c.name, msg, c.ok)
		}
	}
}
