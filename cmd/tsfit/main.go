// Command tsfit fits a forecasting model to a CSV time series (as
// produced by wgen or any "timestamp,value" export) and prints the
// report, baselines, leaderboard and forecast — the Figure 4 pipeline on
// one series.
//
// Usage:
//
//	tsfit -in cdbm011_cpu.csv -technique sarimax -horizon 24
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.Tsfit(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsfit:", err)
		os.Exit(1)
	}
}
