package repro_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/dbsim"
	"repro/internal/metricstore"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// TestFullPipelineOLTP walks the complete §5.1 path in one test:
// simulate a clustered database → poll with a faulty agent → store in
// the central repository → aggregate hourly → run the learning engine →
// store the champion → check the model in with live data → render the
// report. Every stage must hand valid state to the next.
func TestFullPipelineOLTP(t *testing.T) {
	cfg := workload.OLTPConfig(7)
	cluster, err := dbsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := metricstore.New()
	ag, err := agent.New(agent.Config{
		Interval:    15 * time.Minute,
		FailureRate: 0.02,
		Seed:        8,
	}, cluster, store)
	if err != nil {
		t.Fatal(err)
	}
	end := cfg.Start.Add(42 * 24 * time.Hour)
	delivered, missed, err := ag.Collect(cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}
	if delivered == 0 || missed == 0 {
		t.Fatalf("agent stats implausible: delivered=%d missed=%d", delivered, missed)
	}

	key := metricstore.Key{Target: "cdbm011", Metric: "logical_iops"}
	// Gaps are visible at the raw 15-minute granularity; the hourly
	// aggregation absorbs them unless all four polls of a bucket fail.
	raw, err := store.Series(key, timeseries.Minute15, cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}
	if !raw.HasMissing() {
		t.Fatal("fault injection should have created 15-minute gaps")
	}
	ser, err := store.Series(key, timeseries.Hourly, cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := core.NewEngine(core.Options{
		Technique:     core.TechniqueSARIMAX,
		MaxCandidates: 8,
		// The operator knows the backup schedule: every 6 hours.
		KnownShockPhases: []int{0, 6, 12, 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), ser)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestScore.MAPA < 80 {
		t.Fatalf("end-to-end MAPA = %.1f, want > 80", res.TestScore.MAPA)
	}

	// Champion goes to the model store and survives a good check-in.
	models := core.NewModelStore(core.StalePolicy{})
	models.Put(key.String(), res)
	usable, err := models.CheckInSeries(key.String(), res.Forecast.Mean[:4])
	if err != nil || !usable {
		t.Fatalf("check-in failed: usable=%v err=%v", usable, err)
	}

	// Report renders with the load-bearing facts.
	rep := res.Report()
	for _, want := range []string{"champion", "RMSE", "shocks"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestDailyGranularityPath exercises the Table 1 daily policy: hourly
// collection aggregated to daily, 7-day-ahead forecast.
func TestDailyGranularityPath(t *testing.T) {
	// 120 days of hourly data with a weekly cycle, aggregated to daily.
	y := workload.Synthetic(workload.SyntheticOpts{
		N: 120 * 24, Level: 50, Trend: 0.002,
		Periods: []int{24, 168}, Amps: []float64{8, 5},
		Noise: 1, Seed: 31,
	})
	start := time.Date(2026, 2, 2, 0, 0, 0, 0, time.UTC)
	hourly := timeseries.New("db/cpu", start, timeseries.Hourly, y)
	daily, err := hourly.Aggregate(timeseries.Daily, timeseries.AggregateMean)
	if err != nil {
		t.Fatal(err)
	}
	if daily.Len() != 120 {
		t.Fatalf("daily length = %d", daily.Len())
	}

	eng, err := core.NewEngine(core.Options{Technique: core.TechniqueSARIMAX, MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), daily)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 daily: 90 obs window → 83 train + 7 test, horizon 7.
	if res.TrainLen != 83 || res.TestLen != 7 {
		t.Fatalf("daily split = %d/%d, want 83/7", res.TrainLen, res.TestLen)
	}
	if len(res.Forecast.Mean) != 7 {
		t.Fatalf("daily horizon = %d, want 7", len(res.Forecast.Mean))
	}
	if res.Forecast.TimeAt(0).Sub(daily.End()) != 0 {
		t.Fatal("forecast does not start at series end")
	}
}

// TestRepositoryPersistenceRoundTrip checks the save/load path an
// operational deployment would use between agent runs.
func TestRepositoryPersistenceRoundTrip(t *testing.T) {
	cfg := workload.OLAPConfig(9)
	cluster, err := dbsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := metricstore.New()
	ag, err := agent.New(agent.Config{Interval: 15 * time.Minute}, cluster, store)
	if err != nil {
		t.Fatal(err)
	}
	end := cfg.Start.Add(3 * 24 * time.Hour)
	if _, _, err := ag.Collect(cfg.Start, end); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := metricstore.New()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	key := metricstore.Key{Target: "cdbm012", Metric: "cpu"}
	a, err := store.Series(key, timeseries.Hourly, cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Series(key, timeseries.Hourly, cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		av, bv := a.Values[i], b.Values[i]
		if math.IsNaN(av) != math.IsNaN(bv) || (!math.IsNaN(av) && av != bv) {
			t.Fatalf("restored series differs at %d: %v vs %v", i, av, bv)
		}
	}
}

// TestBacktestOnSimulatedWorkload validates the champion quality across
// rolling origins on the realistic substrate, not just synthetics.
func TestBacktestOnSimulatedWorkload(t *testing.T) {
	cfg := workload.OLAPConfig(10)
	cluster, err := dbsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := metricstore.New()
	ag, err := agent.New(agent.Config{Interval: 15 * time.Minute}, cluster, store)
	if err != nil {
		t.Fatal(err)
	}
	end := cfg.Start.Add(20 * 24 * time.Hour)
	if _, _, err := ag.Collect(cfg.Start, end); err != nil {
		t.Fatal(err)
	}
	ser, err := store.Series(metricstore.Key{Target: "cdbm012", Metric: "cpu"},
		timeseries.Hourly, cfg.Start, end)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Backtest(context.Background(), ser, core.BacktestOptions{
		Engine: core.Options{Technique: core.TechniqueHES},
		Folds:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMAPA < 75 {
		t.Fatalf("backtest MAPA = %.1f, want > 75", res.MeanMAPA)
	}
}
